#include "hdov/flat_search.h"

#include <algorithm>
#include <cmath>

#include "telemetry/trace_context.h"

namespace hdov {

namespace {

// Manual span helpers: the explicit stack suspends spans across frames, so
// RAII ScopedSpan cannot carry them. kNoSpan stays a no-op throughout.
inline int32_t Begin(telemetry::TraceRecorder* trace, std::string_view name) {
  return trace != nullptr ? trace->BeginSpan(name)
                          : telemetry::TraceRecorder::kNoSpan;
}

inline void End(telemetry::TraceRecorder* trace, int32_t span) {
  if (trace != nullptr) {
    trace->EndSpan(span);
  }
}

inline void Attr(telemetry::TraceRecorder* trace, int32_t span,
                 std::string_view key, double value) {
  if (trace != nullptr) {
    trace->AddAttr(span, key, value);
  }
}

}  // namespace

FlatSearcher::FlatSearcher(const FlatHdovTree* tree, const Scene* scene,
                           const ModelStore* models, PageDevice* tree_device)
    : flat_(tree), scene_(scene), models_(models), tree_device_(tree_device),
      log_fanout_(std::log(
          static_cast<double>(std::max<size_t>(2, tree->fanout())))),
      log_s_(std::log(std::max(1e-9, tree->s_ratio())) / log_fanout_) {}

Status FlatSearcher::Search(VisibilityStore* store, CellId cell,
                            const SearchOptions& options,
                            std::vector<RetrievedLod>* result,
                            SearchStats* stats) {
  result->clear();
  SearchStats local_stats;
  last_node_page_ = kInvalidPage;  // The buffer does not persist queries.
  telemetry::StageTraceScope stage(telemetry::TraceStage::kSearch);
  telemetry::ScopedSpan span(options.trace, "search");
  span.Attr("cell", static_cast<double>(cell));
  span.Attr("eta", options.eta);
  span.Attr("store", store->name());
  HDOV_RETURN_IF_ERROR(store->BeginCell(cell));

  // Refresh the bitmap index if the cell context moved under us. The flip
  // counter catches a shared store visiting other cells (prefetch) and
  // coming back: same cell id, different BeginCell history.
  const uint64_t flips = store->telemetry_stats().cell_flips;
  if (store != seg_store_ || cell != seg_cell_ || flips != seg_flips_) {
    seg_valid_ = store->FillSegment(&seg_nodes_, &seg_slots_);
    if (seg_valid_) {
      vindex_.Rebuild(static_cast<uint32_t>(flat_->num_nodes()), seg_nodes_,
                      seg_slots_);
    } else {
      vindex_.Clear();
    }
    seg_store_ = store;
    seg_cell_ = cell;
    seg_flips_ = flips;
  }

  Status status = Traverse(store, options, result, &local_stats);
  span.Attr("nodes_visited", static_cast<double>(local_stats.nodes_visited));
  span.Attr("vpages_fetched",
            static_cast<double>(local_stats.vpages_fetched));
  span.Attr("hidden_pruned",
            static_cast<double>(local_stats.hidden_entries_pruned));
  span.Attr("internal_terminations",
            static_cast<double>(local_stats.internal_terminations));
  if (stats != nullptr) {
    *stats = local_stats;
  }
  return status;
}

Status FlatSearcher::FetchVPage(VisibilityStore* store, uint32_t node_id,
                                VPage* page, bool* visible) {
  if (seg_valid_) {
    uint64_t slot = 0;
    if (vindex_.Lookup(node_id, &slot)) {
      HDOV_RETURN_IF_ERROR(store->ReadVPageAt(slot, page));
      *visible = true;
      return Status::OK();
    }
    // Bitmap miss = invisible here; route through GetVPage anyway so the
    // store's invisible_lookups counter ticks exactly as on the legacy
    // path (it answers from its in-memory segment, no I/O).
    return store->GetVPage(node_id, page, visible);
  }
  return store->GetVPage(node_id, page, visible);
}

void FlatSearcher::DecideEntries(const SearchOptions& options,
                                 Frame* frame) const {
  const uint32_t node = frame->node;
  const uint32_t begin = flat_->entry_begin(node);
  const uint32_t count = flat_->entry_count(node);
  frame->decisions.assign(count, EntryDecision{});
  const VPage& vpage = frame->vpage;

  if (flat_->is_leaf(node)) {
    for (uint32_t i = 0; i < count; ++i) {
      frame->decisions[i].action =
          vpage[i].dov <= 0.0f ? Action::kPrune : Action::kObject;
    }
    return;
  }

  // One sweep over the SoA arrays: every prune / terminate / descend
  // verdict for this node is settled before anything is materialized.
  const std::vector<uint64_t>& child_of = flat_->entry_child();
  const std::vector<uint32_t>& leaf_descendants =
      flat_->entry_leaf_descendants();
  const std::vector<uint64_t>& subtree_triangles =
      flat_->entry_subtree_triangles();
  const std::vector<uint32_t>& lod_triangles = flat_->lod_triangles();
  for (uint32_t i = 0; i < count; ++i) {
    EntryDecision& d = frame->decisions[i];
    const VdEntry& vd = vpage[i];
    if (vd.dov <= 0.0f) {
      d.action = Action::kPrune;
      continue;
    }
    const uint32_t slot = begin + i;
    const auto child = static_cast<uint32_t>(child_of[slot]);
    // Eq. 5 LoD selection (blend by DoV / eta), needed by both the cost
    // model and the termination itself.
    const double k =
        options.eta > 0.0 ? std::min(vd.dov / options.eta, 1.0) : 1.0;
    d.level = flat_->InternalLevelForBlend(child, k);

    bool terminate = false;
    if (options.eta > 0.0 && vd.dov <= options.eta) {
      switch (options.heuristic) {
        case TerminationHeuristic::kNone:
          terminate = true;
          break;
        case TerminationHeuristic::kEq4: {
          // Eq. 4: h (1 + log_M s) < log_M NVO, h = log_M m.
          const double h =
              std::log(static_cast<double>(
                  std::max<uint32_t>(1, leaf_descendants[slot]))) /
              log_fanout_;
          d.eq4_lhs = h * (1.0 + log_s_);
          d.eq4_rhs =
              std::log(static_cast<double>(std::max<uint32_t>(1, vd.nvo))) /
              log_fanout_;
          d.eq4_evaluated = true;
          terminate = d.eq4_lhs < d.eq4_rhs;
          break;
        }
        case TerminationHeuristic::kCostModel: {
          const double n = std::max<uint32_t>(1, vd.nvo);
          const double f_bar =
              static_cast<double>(subtree_triangles[slot]) /
              std::max<uint32_t>(1, leaf_descendants[slot]);
          const double per_object_k =
              std::min(vd.dov / n / kMaxDov, 1.0);
          const double descent_triangles =
              n * f_bar *
              (per_object_k +
               (1.0 - per_object_k) * options.assumed_coarsest_ratio);
          terminate = lod_triangles[flat_->lod_begin(child) + d.level] <
                      descent_triangles;
          break;
        }
      }
    }
    d.action = terminate ? Action::kTerminate : Action::kDescend;
  }
}

Status FlatSearcher::EnterNode(VisibilityStore* store, uint32_t node,
                               int32_t descend_span,
                               const SearchOptions& options, SearchStats* stats,
                               std::vector<Frame>* stack) {
  telemetry::TraceRecorder* trace = options.trace;
  ++stats->nodes_visited;
  const int32_t node_span = Begin(trace, "node");
  Attr(trace, node_span, "node", static_cast<double>(node));
  Attr(trace, node_span, "fanout",
       static_cast<double>(flat_->entry_count(node)));
  Attr(trace, node_span, "leaf", flat_->is_leaf(node) ? 1.0 : 0.0);

  // Closes this node's spans in the order the legacy recursion would
  // unwind them when SearchNode returns without recursing further.
  auto leave = [&](Status status) {
    End(trace, node_span);
    End(trace, descend_span);
    return status;
  };

  const PageId page = flat_->page(node);
  if (page != kInvalidPage && page != last_node_page_) {
    if (tree_cache_ != nullptr) {
      Status status = tree_cache_->Get(page).status();
      if (!status.ok()) {
        return leave(status);
      }
      last_node_page_ = page;
    } else if (tree_device_ != nullptr) {
      Status status = tree_device_->Read(page, nullptr);
      if (!status.ok()) {
        return leave(status);
      }
      last_node_page_ = page;
    }
  }

  Frame frame;
  frame.node = node;
  frame.node_span = node_span;
  frame.descend_span = descend_span;
  bool visible = false;
  Status status = FetchVPage(store, node, &frame.vpage, &visible);
  if (!status.ok()) {
    return leave(status);
  }
  ++stats->vpages_fetched;
  if (!visible) {
    if (node == flat_->root_index()) {
      return leave(Status::OK());  // Nothing visible anywhere in this cell.
    }
    // Paper attribute 3: a visible parent entry implies a visible child.
    return leave(Status::Corruption("hdov search: visible entry without V-page"));
  }
  if (frame.vpage.size() != flat_->entry_count(node)) {
    return leave(Status::Corruption("hdov search: V-page entry count mismatch"));
  }

  DecideEntries(options, &frame);
  stack->push_back(std::move(frame));
  return Status::OK();
}

Status FlatSearcher::Traverse(VisibilityStore* store,
                              const SearchOptions& options,
                              std::vector<RetrievedLod>* result,
                              SearchStats* stats) {
  telemetry::TraceRecorder* trace = options.trace;
  std::vector<Frame> stack;
  Status status = EnterNode(store, flat_->root_index(),
                            telemetry::TraceRecorder::kNoSpan, options, stats,
                            &stack);

  while (status.ok() && !stack.empty()) {
    Frame& frame = stack.back();
    const uint32_t count = flat_->entry_count(frame.node);
    if (frame.cursor >= count) {
      // Node done: the child node span closes first, then the descend
      // span the parent opened for it — legacy destruction order.
      End(trace, frame.node_span);
      End(trace, frame.descend_span);
      stack.pop_back();
      continue;
    }
    const uint32_t i = frame.cursor++;
    const uint32_t slot = flat_->entry_begin(frame.node) + i;
    const EntryDecision& d = frame.decisions[i];
    const VdEntry& vd = frame.vpage[i];
    const uint64_t child = flat_->entry_child()[slot];

    switch (d.action) {
      case Action::kPrune: {
        ++stats->hidden_entries_pruned;  // Fig. 3 line 3.
        const int32_t span = Begin(trace, "prune");
        Attr(trace, span, "child", static_cast<double>(child));
        Attr(trace, span, "dov", vd.dov);
        End(trace, span);
        break;
      }
      case Action::kObject: {
        // Fig. 3 lines 4-5 with Eq. 6 LoD selection.
        const Object& obj = scene_->object(static_cast<ObjectId>(child));
        const double k = std::min(vd.dov / kMaxDov, 1.0);
        RetrievedLod lod;
        lod.kind = RetrievedLod::Kind::kObject;
        lod.owner = child;
        lod.lod_level = static_cast<uint32_t>(obj.lods.LevelForBlend(k));
        lod.model = flat_->object_model(child, lod.lod_level);
        lod.triangle_count = obj.lods.level(lod.lod_level).triangle_count;
        lod.byte_size = obj.lods.level(lod.lod_level).byte_size;
        lod.dov = vd.dov;
        result->push_back(lod);
        const int32_t span = Begin(trace, "object");
        Attr(trace, span, "object", static_cast<double>(child));
        Attr(trace, span, "dov", vd.dov);
        Attr(trace, span, "level", static_cast<double>(lod.lod_level));
        End(trace, span);
        break;
      }
      case Action::kTerminate: {
        ++stats->internal_terminations;
        const auto child_node = static_cast<uint32_t>(child);
        const uint32_t lod_slot = flat_->lod_begin(child_node) + d.level;
        RetrievedLod lod;
        lod.kind = RetrievedLod::Kind::kInternal;
        lod.owner = child;
        lod.lod_level = d.level;
        lod.model = flat_->lod_model()[lod_slot];
        lod.triangle_count = flat_->lod_triangles()[lod_slot];
        lod.byte_size = flat_->lod_bytes()[lod_slot];
        lod.dov = vd.dov;
        result->push_back(lod);
        const int32_t span = Begin(trace, "terminate");
        Attr(trace, span, "child", static_cast<double>(child));
        Attr(trace, span, "dov", vd.dov);
        Attr(trace, span, "nvo", static_cast<double>(vd.nvo));
        Attr(trace, span, "level", static_cast<double>(d.level));
        if (d.eq4_evaluated) {
          Attr(trace, span, "eq4_lhs", d.eq4_lhs);
          Attr(trace, span, "eq4_rhs", d.eq4_rhs);
          Attr(trace, span, "eq4_verdict", 1.0);
        }
        End(trace, span);
        break;
      }
      case Action::kDescend: {
        const int32_t span = Begin(trace, "descend");
        Attr(trace, span, "child", static_cast<double>(child));
        Attr(trace, span, "dov", vd.dov);
        Attr(trace, span, "nvo", static_cast<double>(vd.nvo));
        if (d.eq4_evaluated) {
          Attr(trace, span, "eq4_lhs", d.eq4_lhs);
          Attr(trace, span, "eq4_rhs", d.eq4_rhs);
          Attr(trace, span, "eq4_verdict", 0.0);
        }
        // `frame` may dangle after the push; nothing of it is used past
        // this point in the iteration.
        status = EnterNode(store, static_cast<uint32_t>(child), span, options,
                           stats, &stack);
        break;
      }
    }
  }

  if (!status.ok()) {
    // Unwind exactly as the legacy recursion would: each suspended node
    // span, then the descend span above it, innermost first.
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      End(trace, it->node_span);
      End(trace, it->descend_span);
    }
  }
  return status;
}

}  // namespace hdov
