// Indexed-vertical storage scheme (paper §4.3): like the vertical scheme,
// but the per-cell V-page-index segment stores only the visible nodes as
// (offset-number, pointer) pairs, making the segments variable-length and
// the cell flip O(N_vnode) instead of O(N_node).

#ifndef HDOV_HDOV_INDEXED_VERTICAL_STORE_H_
#define HDOV_HDOV_INDEXED_VERTICAL_STORE_H_

#include <memory>

#include "common/result.h"
#include "hdov/hdov_tree.h"
#include "hdov/visibility_store.h"
#include "storage/paged_file.h"

namespace hdov {

class IndexedVerticalStore : public VisibilityStore {
 public:
  static Result<std::unique_ptr<IndexedVerticalStore>> Build(
      const HdovTree& tree, const std::vector<CellVPageSet>& cells,
      PageDevice* device);

  // Reattaches a built store to a restored device image from EncodeMeta
  // output (no I/O billed).
  static Result<std::unique_ptr<IndexedVerticalStore>> Load(
      const HdovTree& tree, std::string_view meta, PageDevice* device);

  std::string name() const override { return "indexed-vertical"; }
  Status BeginCell(CellId cell) override;
  Status GetVPage(uint32_t node_id, VPage* page, bool* visible) override;
  bool FillSegment(std::vector<uint32_t>* nodes,
                   std::vector<uint64_t>* slots) const override;
  Status ReadVPageAt(uint64_t slot, VPage* page) override;
  uint64_t SizeBytes() const override { return device_->SizeBytes(); }
  PageDevice* device() const override { return device_; }
  void EncodeMeta(std::string* dst) const override;

 private:
  IndexedVerticalStore(PageDevice* device, size_t record_size)
      : device_(device), index_file_(device), vpages_(device, record_size) {}

  PageDevice* device_;
  PagedFile index_file_;  // One contiguous blob of variable segments.
  Extent index_extent_;
  // Per-cell (byte offset, byte length) directory. Kept memory-resident;
  // at 16 bytes per cell it is negligible next to the segments themselves
  // (the paper's cost formula likewise counts only the segment entries).
  std::vector<std::pair<uint64_t, uint64_t>> segment_dir_;
  VPageFile vpages_;
  CellId current_cell_ = kInvalidCell;
  // Current segment: visible node ids (ascending) and their slots.
  std::vector<uint32_t> seg_nodes_;
  std::vector<uint64_t> seg_slots_;
};

}  // namespace hdov

#endif  // HDOV_HDOV_INDEXED_VERTICAL_STORE_H_
