#include "hdov/vpage.h"

#include "common/coding.h"

namespace hdov {

std::string SerializeVPage(const VPage& page, size_t capacity) {
  std::string out;
  out.reserve(VPageRecordSize(capacity));
  EncodeFixed32(&out, static_cast<uint32_t>(page.size()));
  for (const VdEntry& e : page) {
    EncodeFloat(&out, e.dov);
    EncodeFixed32(&out, e.nvo);
  }
  out.resize(VPageRecordSize(capacity), '\0');
  return out;
}

Status ParseVPage(std::string_view data, VPage* page) {
  Decoder decoder(data);
  uint32_t count = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&count));
  page->clear();
  page->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    VdEntry e;
    HDOV_RETURN_IF_ERROR(decoder.DecodeFloat(&e.dov));
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&e.nvo));
    page->push_back(e);
  }
  return Status::OK();
}

double VPageDovSum(const VPage& page) {
  double sum = 0.0;
  for (const VdEntry& e : page) {
    sum += e.dov;
  }
  return sum;
}

uint64_t VPageNvoSum(const VPage& page) {
  uint64_t sum = 0;
  for (const VdEntry& e : page) {
    sum += e.nvo;
  }
  return sum;
}

bool VPageVisible(const VPage& page) {
  for (const VdEntry& e : page) {
    if (e.dov > 0.0f) {
      return true;
    }
  }
  return false;
}

}  // namespace hdov
