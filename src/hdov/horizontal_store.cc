#include "hdov/horizontal_store.h"

#include "common/coding.h"

namespace hdov {

Result<std::unique_ptr<HorizontalStore>> HorizontalStore::Build(
    const HdovTree& tree, const std::vector<CellVPageSet>& cells,
    PageDevice* device) {
  if (cells.empty()) {
    return Status::InvalidArgument("horizontal store: no cells");
  }
  const size_t record_size = VPageRecordSize(tree.fanout());
  auto store = std::unique_ptr<HorizontalStore>(new HorizontalStore(
      device, record_size, static_cast<uint32_t>(cells.size())));

  // Slot layout: node-major — slot(node, cell) = node * C + cell. Every
  // slot is materialized, including invisible (empty) V-pages; that is the
  // scheme's defining storage cost.
  for (size_t node = 0; node < tree.num_nodes(); ++node) {
    for (const CellVPageSet& cell : cells) {
      if (cell.pages.size() != tree.num_nodes()) {
        return Status::InvalidArgument(
            "horizontal store: cell V-page set size mismatch");
      }
      HDOV_RETURN_IF_ERROR(
          store->file_
              .AppendRecord(SerializeVPage(cell.pages[node], tree.fanout()))
              .status());
    }
  }
  HDOV_RETURN_IF_ERROR(store->file_.FinishBuild());
  return store;
}

Result<std::unique_ptr<HorizontalStore>> HorizontalStore::Load(
    const HdovTree& tree, std::string_view meta, PageDevice* device) {
  Decoder decoder(meta);
  uint32_t num_cells = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&num_cells));
  auto store = std::unique_ptr<HorizontalStore>(new HorizontalStore(
      device, VPageRecordSize(tree.fanout()), num_cells));
  HDOV_RETURN_IF_ERROR(store->file_.RestoreMeta(&decoder));
  return store;
}

void HorizontalStore::EncodeMeta(std::string* dst) const {
  EncodeFixed32(dst, num_cells_);
  file_.EncodeMeta(dst);
}

Status HorizontalStore::BeginCell(CellId cell) {
  if (cell >= num_cells_) {
    return Status::OutOfRange("horizontal store: cell out of range");
  }
  if (cell != current_cell_) {
    ++tstats_.cell_flips;
  }
  current_cell_ = cell;
  // No per-cell segment to flip; successive queries in a new cell simply
  // address different slots.
  return Status::OK();
}

Status HorizontalStore::GetVPage(uint32_t node_id, VPage* page,
                                 bool* visible) {
  if (current_cell_ == kInvalidCell) {
    return Status::FailedPrecondition("horizontal store: BeginCell first");
  }
  const uint64_t slot =
      static_cast<uint64_t>(node_id) * num_cells_ + current_cell_;
  HDOV_RETURN_IF_ERROR(file_.ReadRecord(slot, page));
  // The horizontal scheme materializes every (node, cell) record, so even
  // invisible lookups fetch a record.
  ++tstats_.vpage_fetches;
  *visible = !page->empty() && VPageVisible(*page);
  if (!*visible) {
    ++tstats_.invisible_lookups;
    page->clear();
  }
  return Status::OK();
}

}  // namespace hdov
