// HdovBuilder: offline construction of the HDoV-tree (paper §5.1):
//  1. build an R-tree over the object MBRs (Ang–Tan linear split);
//  2. generate internal LoDs bottom-up — each node gets a coarse LoD chain
//     representing the aggregation of all objects below it (qslim-style
//     simplification in full-geometry mode, the same count formulas in
//     proxy mode);
//  3. register every representation in the ModelStore;
//  4. derive per-cell V-pages from the precomputed visibility table
//     (DoV of an internal entry = sum over its child node's entries,
//     NVO likewise) and hand them to a storage scheme.

#ifndef HDOV_HDOV_BUILDER_H_
#define HDOV_HDOV_BUILDER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "hdov/hdov_tree.h"
#include "hdov/visibility_store.h"
#include "rtree/rtree.h"
#include "scene/object.h"
#include "storage/model_store.h"
#include "visibility/precompute.h"

namespace hdov {

struct HdovBuildOptions {
  RTreeOptions rtree;

  // Build the backbone by STR bulk loading instead of repeated insertion
  // (the paper inserts with the Ang–Tan split; bulk loading yields fuller,
  // less overlapping nodes and is much faster for static scenes).
  bool bulk_load = false;

  // s — the polygon ratio npoly(node) / sum npoly(children) targeted for
  // the finest internal LoD of each node (the paper's Eq. 4 parameter).
  // Internal LoDs replace branches whose entries have DoV <= eta — whose
  // objects Eq. 6 would retrieve near their *coarsest* LoD anyway — so an
  // internal LoD must be sized well below the sum of its subtree's
  // coarsest object LoDs for termination to be a polygon/IO saving (which
  // is what gives the paper's Figs. 7-8 their downward slope). With the
  // default object chains bottoming out at 5%, s = 0.02 keeps the finest
  // internal LoD under a typical partially visible descent.
  double internal_lod_s = 0.02;

  // Coarser internal LoD levels, as fractions of the finest internal LoD.
  std::vector<double> internal_ratios = {1.0, 0.3, 0.1};

  // Logical bytes per triangle for internal LoDs (keep equal to the scene
  // LodChainOptions value so storage accounting is uniform).
  uint64_t bytes_per_triangle = 224;

  uint32_t min_internal_triangles = 16;

  // Full-geometry mode: actually aggregate and simplify meshes for the
  // internal LoDs (requires a full-mode scene). Proxy mode: counts only.
  bool build_internal_meshes = false;

  SimplifyOptions simplify;  // Used when build_internal_meshes is true.
};

class HdovBuilder {
 public:
  // Builds the view-invariant tree over `scene` and registers all object
  // and internal LoD representations in `models`.
  static Result<HdovTree> Build(const Scene& scene, ModelStore* models,
                                const HdovBuildOptions& options);
};

// Derives the V-pages of every node for one cell: bottom-up aggregation of
// the per-object DoV values (paper DoV attribute 2: a parent entry's DoV is
// the sum of the DoVs in the node it points to). Invisible nodes get an
// empty VPage.
CellVPageSet ComputeCellVPages(const HdovTree& tree,
                               const CellVisibility& cell);

// Derives every cell's V-pages. Cells are independent, so with threads !=
// 1 the per-cell aggregation fans out over a worker pool (0 = one worker
// per hardware thread); each worker writes only its own cells' slots and
// the result is identical for every thread count.
std::vector<CellVPageSet> ComputeAllCellVPages(const HdovTree& tree,
                                               const VisibilityTable& table,
                                               uint32_t threads = 1);

enum class StorageScheme : uint8_t {
  kHorizontal = 0,
  kVertical = 1,
  kIndexedVertical = 2,
  // Extension (not in the paper): per-cell visibility bitmaps with rank
  // addressing instead of explicit pointers; see bitmap_vertical_store.h.
  kBitmapVertical = 3,
};

std::string StorageSchemeName(StorageScheme scheme);

// Builds the chosen storage scheme over `device` from the visibility
// table. `threads` parallelizes the per-cell V-page derivation (the
// device writes stay sequential); see ComputeAllCellVPages.
Result<std::unique_ptr<VisibilityStore>> BuildStore(
    StorageScheme scheme, const HdovTree& tree, const VisibilityTable& table,
    PageDevice* device, uint32_t threads = 1);

// Reattaches a previously built store to a restored device image from its
// VisibilityStore::EncodeMeta bytes. No I/O is billed; the loaded store
// serves queries with counters identical to the freshly built one.
Result<std::unique_ptr<VisibilityStore>> LoadStore(StorageScheme scheme,
                                                   const HdovTree& tree,
                                                   std::string_view meta,
                                                   PageDevice* device);

}  // namespace hdov

#endif  // HDOV_HDOV_BUILDER_H_
