#include "hdov/visibility_store.h"

#include <algorithm>
#include <cassert>

namespace hdov {

void VisibilityStore::RegisterTelemetry(telemetry::MetricsRegistry* registry,
                                        const std::string& prefix) const {
  const VisibilityStoreStats* stats = &tstats_;
  const std::string base = prefix + ".store." + name();
  registry->RegisterView(base + ".vpage_fetches", [stats] {
    return static_cast<double>(stats->vpage_fetches);
  });
  registry->RegisterView(base + ".invisible_lookups", [stats] {
    return static_cast<double>(stats->invisible_lookups);
  });
  registry->RegisterView(base + ".cell_flips", [stats] {
    return static_cast<double>(stats->cell_flips);
  });
}

VPageFile::VPageFile(PageDevice* device, size_t record_size)
    : device_(device), record_size_(record_size),
      records_per_page_(std::max<size_t>(1, device->page_size() /
                                                record_size)) {
  pending_.reserve(device->page_size());
}

Result<uint64_t> VPageFile::AppendRecord(std::string_view record) {
  if (record.size() != record_size_) {
    return Status::InvalidArgument("vpage file: wrong record size");
  }
  pending_.append(record);
  uint64_t slot = next_slot_++;
  if (next_slot_ % records_per_page_ == 0) {
    HDOV_RETURN_IF_ERROR(FlushPending());
  }
  return slot;
}

Status VPageFile::FinishBuild() {
  if (!pending_.empty()) {
    HDOV_RETURN_IF_ERROR(FlushPending());
  }
  return Status::OK();
}

Status VPageFile::FlushPending() {
  if (pending_.empty()) {
    return Status::OK();
  }
  PageId page = device_->Allocate();
  HDOV_RETURN_IF_ERROR(device_->Write(page, pending_));
  pages_.push_back(page);
  pending_.clear();
  return Status::OK();
}

void VPageFile::EncodeMeta(std::string* dst) const {
  EncodeFixed64(dst, next_slot_);
  EncodeFixed64(dst, pages_.size());
  for (PageId page : pages_) {
    EncodeFixed64(dst, page);
  }
}

Status VPageFile::RestoreMeta(Decoder* decoder) {
  uint64_t records = 0;
  uint64_t page_count = 0;
  HDOV_RETURN_IF_ERROR(decoder->DecodeFixed64(&records));
  HDOV_RETURN_IF_ERROR(decoder->DecodeFixed64(&page_count));
  std::vector<PageId> pages(page_count);
  for (PageId& page : pages) {
    HDOV_RETURN_IF_ERROR(decoder->DecodeFixed64(&page));
    if (page >= device_->page_count()) {
      return Status::Corruption("vpage file: page id past device end");
    }
  }
  const uint64_t needed =
      (records + records_per_page_ - 1) / records_per_page_;
  if (needed != page_count) {
    return Status::Corruption("vpage file: record/page count mismatch");
  }
  next_slot_ = records;
  pages_ = std::move(pages);
  pending_.clear();
  InvalidateCache();
  return Status::OK();
}

Status VPageFile::ReadRecord(uint64_t slot, VPage* page) {
  if (slot >= next_slot_) {
    return Status::OutOfRange("vpage file: slot out of range");
  }
  const uint64_t page_index = slot / records_per_page_;
  if (page_index >= pages_.size()) {
    return Status::FailedPrecondition(
        "vpage file: reading before FinishBuild()");
  }
  const PageId device_page = pages_[page_index];
  if (device_page != cached_page_) {
    HDOV_RETURN_IF_ERROR(device_->Read(device_page, &cache_));
    cached_page_ = device_page;
  }
  const size_t offset = (slot % records_per_page_) * record_size_;
  return ParseVPage(std::string_view(cache_).substr(offset, record_size_),
                    page);
}

}  // namespace hdov
