// Bitmap-vertical storage scheme (extension; not in the paper): like the
// indexed-vertical scheme, but the per-cell V-page-index segment is a
// bitmap of visible nodes instead of explicit (offset, pointer) pairs.
// Because each cell's V-pages are clustered contiguously in DFS (node-id)
// order, a visible node's record slot is simply
//
//   slot = cell_base + (number of visible nodes with smaller id)
//
// i.e. a rank query on the bitmap — no pointers need to be stored at all.
// Segment size drops from 12 * N_vnode bytes to N_node / 8 bytes, which
// wins whenever more than ~1% of nodes are visible per cell.

#ifndef HDOV_HDOV_BITMAP_VERTICAL_STORE_H_
#define HDOV_HDOV_BITMAP_VERTICAL_STORE_H_

#include <memory>

#include "common/result.h"
#include "hdov/hdov_tree.h"
#include "hdov/visibility_store.h"
#include "storage/paged_file.h"

namespace hdov {

class BitmapVerticalStore : public VisibilityStore {
 public:
  static Result<std::unique_ptr<BitmapVerticalStore>> Build(
      const HdovTree& tree, const std::vector<CellVPageSet>& cells,
      PageDevice* device);

  // Reattaches a built store to a restored device image from EncodeMeta
  // output (no I/O billed).
  static Result<std::unique_ptr<BitmapVerticalStore>> Load(
      const HdovTree& tree, std::string_view meta, PageDevice* device);

  std::string name() const override { return "bitmap-vertical"; }
  Status BeginCell(CellId cell) override;
  Status GetVPage(uint32_t node_id, VPage* page, bool* visible) override;
  bool FillSegment(std::vector<uint32_t>* nodes,
                   std::vector<uint64_t>* slots) const override;
  Status ReadVPageAt(uint64_t slot, VPage* page) override;
  uint64_t SizeBytes() const override { return device_->SizeBytes(); }
  PageDevice* device() const override { return device_; }
  void EncodeMeta(std::string* dst) const override;

 private:
  BitmapVerticalStore(PageDevice* device, size_t record_size,
                      size_t num_nodes)
      : device_(device), index_file_(device), vpages_(device, record_size),
        num_nodes_(num_nodes),
        segment_bytes_((num_nodes + 7) / 8) {}

  PageDevice* device_;
  PagedFile index_file_;     // One contiguous blob of per-cell bitmaps.
  Extent index_extent_;
  VPageFile vpages_;
  size_t num_nodes_;
  uint64_t segment_bytes_;
  // Per-cell base slot of the clustered V-pages (16 B/cell, memory
  // resident like the indexed-vertical directory).
  std::vector<uint64_t> cell_base_;

  CellId current_cell_ = kInvalidCell;
  std::string bitmap_;             // Current cell's bitmap.
  std::vector<uint32_t> rank_;     // Prefix popcounts per byte.
};

}  // namespace hdov

#endif  // HDOV_HDOV_BITMAP_VERTICAL_STORE_H_
