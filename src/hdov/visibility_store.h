// VisibilityStore: the interface behind the paper's three storage schemes
// for view-variant V-pages (§4): horizontal, vertical, indexed-vertical.
//
// Usage at query time:
//   store->BeginCell(cell);             // "flips" the cell context
//   store->GetVPage(node_id, &page, &visible);
//
// All schemes bill their I/O on the PageDevice they were built over, so
// the harness reads storage sizes (Table 2) and I/O counts (Figs. 7/8)
// straight off the device.

#ifndef HDOV_HDOV_VISIBILITY_STORE_H_
#define HDOV_HDOV_VISIBILITY_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "common/status.h"
#include "hdov/vpage.h"
#include "scene/cell_grid.h"
#include "storage/page_device.h"

namespace hdov {

// The build-time input: V-pages of every node for one cell, indexed by
// node_id. An empty VPage means the node is invisible in the cell.
struct CellVPageSet {
  std::vector<VPage> pages;
};

// Per-store access counters, attributing V-page traffic to its scheme
// (the telemetry layer exposes them as `<prefix>.store.<scheme>.*`).
struct VisibilityStoreStats {
  uint64_t vpage_fetches = 0;      // V-page records read from the file.
  uint64_t invisible_lookups = 0;  // Lookups answered in memory (no I/O).
  uint64_t cell_flips = 0;         // BeginCell calls that switched cells.
};

class VisibilityStore {
 public:
  virtual ~VisibilityStore() = default;

  virtual std::string name() const = 0;

  // Switches the query context to `cell`. Vertical schemes pay the
  // V-page-index segment "flip" here; calling it again with the same cell
  // is free.
  virtual Status BeginCell(CellId cell) = 0;

  // Fetches the current cell's V-page of node `node_id`. Sets *visible to
  // false (leaving `page` empty) when the node has no V-page in this cell.
  virtual Status GetVPage(uint32_t node_id, VPage* page, bool* visible) = 0;

  // Fast-path introspection for the flat searcher (see flat_tree.h):
  // fills `nodes`/`slots` with the current cell's visible node ids
  // (ascending) and their V-page record slots, answered from the store's
  // in-memory segment with no I/O and no counter ticks — BeginCell
  // already billed the segment flip. Returns false when the scheme keeps
  // no in-memory segment (horizontal) or no cell is active; callers then
  // fall back to GetVPage per node.
  virtual bool FillSegment(std::vector<uint32_t>* nodes,
                           std::vector<uint64_t>* slots) const {
    (void)nodes;
    (void)slots;
    return false;
  }

  // Reads the V-page record at `slot` (obtained from FillSegment), billed
  // exactly like the visible tail of GetVPage: one record read plus one
  // vpage_fetches tick. Only schemes whose FillSegment returns true
  // implement it.
  virtual Status ReadVPageAt(uint64_t slot, VPage* page) {
    (void)slot;
    (void)page;
    return Status::Unimplemented(
        "visibility store: no slot-addressed read fast path");
  }

  // Total bytes occupied on the device (the Table 2 number).
  virtual uint64_t SizeBytes() const = 0;

  virtual PageDevice* device() const = 0;

  // Serializes the store's device-resident layout metadata (extents,
  // directories, V-page file layout) so the store can be reattached to a
  // restored device image by the matching static Load() of its class.
  virtual void EncodeMeta(std::string* dst) const = 0;

  const VisibilityStoreStats& telemetry_stats() const { return tstats_; }

  // Registers read-through views over the per-store counters as
  // `<prefix>.store.<name()>.vpage_fetches` / `.invisible_lookups` /
  // `.cell_flips`. The store must outlive the registration.
  void RegisterTelemetry(telemetry::MetricsRegistry* registry,
                         const std::string& prefix) const;

 protected:
  VisibilityStoreStats tstats_;
};

// VPageFile: shared helper managing fixed-size V-page records packed into
// device pages (records never span pages). Reads go through a one-page
// cache so a DFS-ordered scan of a cell's V-pages reads each page once.
class VPageFile {
 public:
  // `record_size` = VPageRecordSize(tree fanout).
  VPageFile(PageDevice* device, size_t record_size);

  size_t records_per_page() const { return records_per_page_; }

  // Appends a record during build; returns its slot number. Records are
  // buffered and written out page by page; call FinishBuild() once done.
  Result<uint64_t> AppendRecord(std::string_view record);

  // Flushes the final partially filled page.
  Status FinishBuild();

  // Reads the record at `slot` (billed unless served by the page cache).
  Status ReadRecord(uint64_t slot, VPage* page);

  void InvalidateCache() { cached_page_ = kInvalidPage; }

  uint64_t num_records() const { return next_slot_; }

  // Serializes the built layout (record count + device pages) / restores
  // it into a freshly constructed VPageFile over the same device image and
  // record size. RestoreMeta leaves the file in the post-FinishBuild state.
  void EncodeMeta(std::string* dst) const;
  Status RestoreMeta(Decoder* decoder);

 private:
  Status FlushPending();

  PageDevice* device_;
  size_t record_size_;
  size_t records_per_page_;
  uint64_t next_slot_ = 0;
  std::vector<PageId> pages_;  // Device page of each full record page.
  std::string pending_;        // Partially filled build page.
  // One-page read cache.
  PageId cached_page_ = kInvalidPage;
  std::string cache_;
};

}  // namespace hdov

#endif  // HDOV_HDOV_VISIBILITY_STORE_H_
