#include "hdov/search.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "telemetry/trace_context.h"

namespace hdov {

void PrioritizeRetrieval(const Frustum& frustum, const HdovTree& tree,
                         const Scene& scene,
                         std::vector<RetrievedLod>* result) {
  struct Ranked {
    bool in_frustum;
    double key;  // DoV (descending) inside, distance (ascending) outside.
  };
  // Rank each representation once up front: the frustum test and the
  // MBR-distance are far too heavy to re-run O(n log n) times inside the
  // sort comparator.
  std::vector<Ranked> ranked;
  ranked.reserve(result->size());
  for (const RetrievedLod& lod : *result) {
    const Aabb& mbr =
        lod.kind == RetrievedLod::Kind::kObject
            ? scene.object(static_cast<ObjectId>(lod.owner)).mbr
            : tree.node(static_cast<size_t>(lod.owner)).BoundingBox();
    if (frustum.IntersectsBox(mbr)) {
      ranked.push_back(Ranked{true, static_cast<double>(lod.dov)});
    } else {
      ranked.push_back(Ranked{false, mbr.DistanceTo(frustum.eye())});
    }
  }
  std::vector<size_t> order(result->size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const Ranked& ra = ranked[a];
    const Ranked& rb = ranked[b];
    if (ra.in_frustum != rb.in_frustum) {
      return ra.in_frustum;
    }
    if (ra.in_frustum) {
      return ra.key > rb.key;  // High DoV first.
    }
    return ra.key < rb.key;  // Near first.
  });
  std::vector<RetrievedLod> sorted;
  sorted.reserve(result->size());
  for (size_t index : order) {
    sorted.push_back((*result)[index]);
  }
  *result = std::move(sorted);
}

const char* SearchBackendName(SearchBackend backend) {
  switch (backend) {
    case SearchBackend::kLegacy:
      return "legacy";
    case SearchBackend::kFlat:
      return "flat";
  }
  return "unknown";
}

bool ParseSearchBackend(std::string_view name, SearchBackend* backend) {
  if (name == "legacy") {
    *backend = SearchBackend::kLegacy;
    return true;
  }
  if (name == "flat") {
    *backend = SearchBackend::kFlat;
    return true;
  }
  return false;
}

SearchBackend& DefaultSearchBackend() {
  static SearchBackend backend = [] {
    SearchBackend parsed = SearchBackend::kLegacy;
    if (const char* env = std::getenv("HDOV_SEARCH_BACKEND")) {
      ParseSearchBackend(env, &parsed);
    }
    return parsed;
  }();
  return backend;
}

HdovSearcher::HdovSearcher(const HdovTree* tree, const Scene* scene,
                           const ModelStore* models, PageDevice* tree_device)
    : tree_(tree), scene_(scene), models_(models),
      tree_device_(tree_device),
      log_fanout_(std::log(static_cast<double>(
          std::max<size_t>(2, tree->fanout())))) {}

Status HdovSearcher::Search(VisibilityStore* store, CellId cell,
                            const SearchOptions& options,
                            std::vector<RetrievedLod>* result,
                            SearchStats* stats) {
  result->clear();
  SearchStats local_stats;
  last_node_page_ = kInvalidPage;  // The buffer does not persist queries.
  // Every page read / pool hit below this point is attributed to the
  // search stage of whichever session the thread is serving.
  telemetry::StageTraceScope stage(telemetry::TraceStage::kSearch);
  telemetry::ScopedSpan span(options.trace, "search");
  span.Attr("cell", static_cast<double>(cell));
  span.Attr("eta", options.eta);
  span.Attr("store", store->name());
  HDOV_RETURN_IF_ERROR(store->BeginCell(cell));
  Status status = SearchNode(store, tree_->root_index(), options, result,
                             &local_stats);
  span.Attr("nodes_visited", static_cast<double>(local_stats.nodes_visited));
  span.Attr("vpages_fetched",
            static_cast<double>(local_stats.vpages_fetched));
  span.Attr("hidden_pruned",
            static_cast<double>(local_stats.hidden_entries_pruned));
  span.Attr("internal_terminations",
            static_cast<double>(local_stats.internal_terminations));
  if (stats != nullptr) {
    *stats = local_stats;
  }
  return status;
}

Status HdovSearcher::SearchNode(VisibilityStore* store, size_t node_index,
                                const SearchOptions& options,
                                std::vector<RetrievedLod>* result,
                                SearchStats* stats) {
  const HdovNode& node = tree_->node(node_index);
  ++stats->nodes_visited;
  telemetry::TraceRecorder* trace = options.trace;
  telemetry::ScopedSpan node_span(trace, "node");
  node_span.Attr("node", static_cast<double>(node.node_id));
  node_span.Attr("fanout", static_cast<double>(node.entries.size()));
  node_span.Attr("leaf", node.is_leaf ? 1.0 : 0.0);
  if (node.page != kInvalidPage && node.page != last_node_page_) {
    if (tree_cache_ != nullptr) {
      HDOV_RETURN_IF_ERROR(tree_cache_->Get(node.page).status());
      last_node_page_ = node.page;
    } else if (tree_device_ != nullptr) {
      HDOV_RETURN_IF_ERROR(tree_device_->Read(node.page, nullptr));
      last_node_page_ = node.page;
    }
  }

  VPage vpage;
  bool visible = false;
  HDOV_RETURN_IF_ERROR(store->GetVPage(node.node_id, &vpage, &visible));
  ++stats->vpages_fetched;
  if (!visible) {
    if (node_index == tree_->root_index()) {
      return Status::OK();  // Nothing visible anywhere in this cell.
    }
    // Paper attribute 3: a visible parent entry implies a visible child.
    return Status::Corruption("hdov search: visible entry without V-page");
  }
  if (vpage.size() != node.entries.size()) {
    return Status::Corruption("hdov search: V-page entry count mismatch");
  }

  const double log_s =
      std::log(std::max(1e-9, tree_->s_ratio())) / log_fanout_;

  for (size_t i = 0; i < node.entries.size(); ++i) {
    const HdovEntry& entry = node.entries[i];
    const VdEntry& vd = vpage[i];
    if (vd.dov <= 0.0f) {
      ++stats->hidden_entries_pruned;  // Fig. 3 line 3.
      telemetry::ScopedSpan prune_span(trace, "prune");
      prune_span.Attr("child", static_cast<double>(entry.child));
      prune_span.Attr("dov", vd.dov);
      continue;
    }

    if (node.is_leaf) {
      // Fig. 3 lines 4-5 with Eq. 6 LoD selection.
      const Object& obj = scene_->object(static_cast<ObjectId>(entry.child));
      const double k = std::min(vd.dov / kMaxDov, 1.0);
      RetrievedLod lod;
      lod.kind = RetrievedLod::Kind::kObject;
      lod.owner = entry.child;
      lod.lod_level = static_cast<uint32_t>(obj.lods.LevelForBlend(k));
      lod.model = tree_->object_models()[entry.child][lod.lod_level];
      lod.triangle_count = obj.lods.level(lod.lod_level).triangle_count;
      lod.byte_size = obj.lods.level(lod.lod_level).byte_size;
      lod.dov = vd.dov;
      result->push_back(lod);
      telemetry::ScopedSpan object_span(trace, "object");
      object_span.Attr("object", static_cast<double>(entry.child));
      object_span.Attr("dov", vd.dov);
      object_span.Attr("level", static_cast<double>(lod.lod_level));
      continue;
    }

    // Internal entry: decide between terminating with the child's internal
    // LoD (Fig. 3 lines 7-8) and descending (line 10).
    const size_t child_index = static_cast<size_t>(entry.child);
    const HdovNode& child = tree_->node(child_index);
    // Eq. 5 LoD selection, needed by both the cost model and the
    // termination itself: blend by DoV / eta (in (0, 1] on this branch).
    const double k =
        options.eta > 0.0 ? std::min(vd.dov / options.eta, 1.0) : 1.0;
    const size_t internal_level = child.internal_lods.LevelForBlend(k);

    bool terminate = false;
    bool eq4_evaluated = false;
    double eq4_lhs = 0.0;
    double eq4_rhs = 0.0;
    if (options.eta > 0.0 && vd.dov <= options.eta) {
      switch (options.heuristic) {
        case TerminationHeuristic::kNone:
          terminate = true;
          break;
        case TerminationHeuristic::kEq4: {
          // Eq. 4: h (1 + log_M s) < log_M NVO, h = log_M m.
          const double h =
              std::log(static_cast<double>(
                  std::max<uint32_t>(1, entry.leaf_descendants))) /
              log_fanout_;
          eq4_lhs = h * (1.0 + log_s);
          eq4_rhs =
              std::log(static_cast<double>(std::max<uint32_t>(1, vd.nvo))) /
              log_fanout_;
          eq4_evaluated = true;
          terminate = eq4_lhs < eq4_rhs;
          break;
        }
        case TerminationHeuristic::kCostModel: {
          // Estimate the descent's actual retrieval: NVO objects of
          // average finest size f_bar, each at the Eq. 6 level of its
          // average per-object DoV.
          const double n = std::max<uint32_t>(1, vd.nvo);
          const double f_bar =
              static_cast<double>(entry.subtree_triangles) /
              std::max<uint32_t>(1, entry.leaf_descendants);
          const double per_object_k =
              std::min(vd.dov / n / kMaxDov, 1.0);
          const double descent_triangles =
              n * f_bar *
              (per_object_k +
               (1.0 - per_object_k) * options.assumed_coarsest_ratio);
          terminate =
              child.internal_lods.level(internal_level).triangle_count <
              descent_triangles;
          break;
        }
      }
    }

    if (terminate) {
      ++stats->internal_terminations;
      RetrievedLod lod;
      lod.kind = RetrievedLod::Kind::kInternal;
      lod.owner = child_index;
      lod.lod_level = static_cast<uint32_t>(internal_level);
      lod.model = child.internal_lod_models[lod.lod_level];
      lod.triangle_count =
          child.internal_lods.level(lod.lod_level).triangle_count;
      lod.byte_size = child.internal_lods.level(lod.lod_level).byte_size;
      lod.dov = vd.dov;
      result->push_back(lod);
      telemetry::ScopedSpan term_span(trace, "terminate");
      term_span.Attr("child", static_cast<double>(child_index));
      term_span.Attr("dov", vd.dov);
      term_span.Attr("nvo", static_cast<double>(vd.nvo));
      term_span.Attr("level", static_cast<double>(internal_level));
      if (eq4_evaluated) {
        term_span.Attr("eq4_lhs", eq4_lhs);
        term_span.Attr("eq4_rhs", eq4_rhs);
        term_span.Attr("eq4_verdict", 1.0);
      }
      continue;
    }

    telemetry::ScopedSpan descend_span(trace, "descend");
    descend_span.Attr("child", static_cast<double>(child_index));
    descend_span.Attr("dov", vd.dov);
    descend_span.Attr("nvo", static_cast<double>(vd.nvo));
    if (eq4_evaluated) {
      descend_span.Attr("eq4_lhs", eq4_lhs);
      descend_span.Attr("eq4_rhs", eq4_rhs);
      descend_span.Attr("eq4_verdict", 0.0);
    }
    HDOV_RETURN_IF_ERROR(
        SearchNode(store, child_index, options, result, stats));
  }
  return Status::OK();
}

}  // namespace hdov
