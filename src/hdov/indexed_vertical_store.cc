#include "hdov/indexed_vertical_store.h"

#include <algorithm>

#include "common/coding.h"

namespace hdov {

Result<std::unique_ptr<IndexedVerticalStore>> IndexedVerticalStore::Build(
    const HdovTree& tree, const std::vector<CellVPageSet>& cells,
    PageDevice* device) {
  if (cells.empty()) {
    return Status::InvalidArgument("indexed-vertical store: no cells");
  }
  const size_t record_size = VPageRecordSize(tree.fanout());
  auto store = std::unique_ptr<IndexedVerticalStore>(
      new IndexedVerticalStore(device, record_size));

  // Pass 1: clustered V-pages of visible nodes, per cell in DFS order.
  std::vector<std::vector<std::pair<uint32_t, uint64_t>>> entries(
      cells.size());
  for (size_t c = 0; c < cells.size(); ++c) {
    const CellVPageSet& cell = cells[c];
    if (cell.pages.size() != tree.num_nodes()) {
      return Status::InvalidArgument(
          "indexed-vertical store: cell V-page set size mismatch");
    }
    for (size_t node = 0; node < tree.num_nodes(); ++node) {
      const VPage& page = cell.pages[node];
      if (page.empty() || !VPageVisible(page)) {
        continue;
      }
      HDOV_ASSIGN_OR_RETURN(
          uint64_t slot,
          store->vpages_.AppendRecord(SerializeVPage(page, tree.fanout())));
      entries[c].emplace_back(static_cast<uint32_t>(node), slot);
    }
  }
  HDOV_RETURN_IF_ERROR(store->vpages_.FinishBuild());

  // Pass 2: sparse per-cell segments of (offset number, pointer) pairs,
  // packed back to back in one contiguous file; the tiny per-cell
  // directory (offset, length) stays memory-resident.
  std::string blob;
  store->segment_dir_.reserve(cells.size());
  for (size_t c = 0; c < cells.size(); ++c) {
    const uint64_t offset = blob.size();
    for (const auto& [node, slot] : entries[c]) {
      EncodeFixed32(&blob, node);
      EncodeFixed64(&blob, slot);
    }
    store->segment_dir_.emplace_back(offset, blob.size() - offset);
  }
  HDOV_ASSIGN_OR_RETURN(store->index_extent_,
                        store->index_file_.Append(blob));
  return store;
}

Result<std::unique_ptr<IndexedVerticalStore>> IndexedVerticalStore::Load(
    const HdovTree& tree, std::string_view meta, PageDevice* device) {
  Decoder decoder(meta);
  auto store = std::unique_ptr<IndexedVerticalStore>(
      new IndexedVerticalStore(device, VPageRecordSize(tree.fanout())));
  HDOV_RETURN_IF_ERROR(DecodeExtent(&decoder, &store->index_extent_));
  uint64_t cells = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&cells));
  store->segment_dir_.resize(cells);
  for (auto& [offset, length] : store->segment_dir_) {
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&offset));
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&length));
  }
  HDOV_RETURN_IF_ERROR(store->vpages_.RestoreMeta(&decoder));
  return store;
}

void IndexedVerticalStore::EncodeMeta(std::string* dst) const {
  EncodeExtent(dst, index_extent_);
  EncodeFixed64(dst, segment_dir_.size());
  for (const auto& [offset, length] : segment_dir_) {
    EncodeFixed64(dst, offset);
    EncodeFixed64(dst, length);
  }
  vpages_.EncodeMeta(dst);
}

Status IndexedVerticalStore::BeginCell(CellId cell) {
  if (cell >= segment_dir_.size()) {
    return Status::OutOfRange("indexed-vertical store: cell out of range");
  }
  if (cell == current_cell_) {
    return Status::OK();
  }
  ++tstats_.cell_flips;
  const auto [offset, length] = segment_dir_[cell];
  HDOV_ASSIGN_OR_RETURN(std::string payload,
                        index_file_.ReadRange(index_extent_, offset, length));
  Decoder decoder(payload);
  const uint32_t count =
      static_cast<uint32_t>(length / (sizeof(uint32_t) + sizeof(uint64_t)));
  seg_nodes_.resize(count);
  seg_slots_.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&seg_nodes_[i]));
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&seg_slots_[i]));
  }
  current_cell_ = cell;
  vpages_.InvalidateCache();
  return Status::OK();
}

bool IndexedVerticalStore::FillSegment(std::vector<uint32_t>* nodes,
                                       std::vector<uint64_t>* slots) const {
  if (current_cell_ == kInvalidCell) {
    return false;
  }
  *nodes = seg_nodes_;
  *slots = seg_slots_;
  return true;
}

Status IndexedVerticalStore::ReadVPageAt(uint64_t slot, VPage* page) {
  HDOV_RETURN_IF_ERROR(vpages_.ReadRecord(slot, page));
  ++tstats_.vpage_fetches;
  return Status::OK();
}

Status IndexedVerticalStore::GetVPage(uint32_t node_id, VPage* page,
                                      bool* visible) {
  if (current_cell_ == kInvalidCell) {
    return Status::FailedPrecondition(
        "indexed-vertical store: BeginCell first");
  }
  auto it = std::lower_bound(seg_nodes_.begin(), seg_nodes_.end(), node_id);
  if (it == seg_nodes_.end() || *it != node_id) {
    ++tstats_.invisible_lookups;
    page->clear();
    *visible = false;
    return Status::OK();
  }
  const size_t idx = static_cast<size_t>(it - seg_nodes_.begin());
  HDOV_RETURN_IF_ERROR(vpages_.ReadRecord(seg_slots_[idx], page));
  ++tstats_.vpage_fetches;
  *visible = true;
  return Status::OK();
}

}  // namespace hdov
