#include "hdov/vertical_store.h"

#include "common/coding.h"

namespace hdov {

Result<std::unique_ptr<VerticalStore>> VerticalStore::Build(
    const HdovTree& tree, const std::vector<CellVPageSet>& cells,
    PageDevice* device) {
  if (cells.empty()) {
    return Status::InvalidArgument("vertical store: no cells");
  }
  const size_t record_size = VPageRecordSize(tree.fanout());
  auto store = std::unique_ptr<VerticalStore>(
      new VerticalStore(device, record_size));

  // Pass 1: write the clustered V-pages (visible nodes only, node_id ==
  // DFS order) and remember each one's slot.
  std::vector<std::vector<uint64_t>> pointers(cells.size());
  for (size_t c = 0; c < cells.size(); ++c) {
    const CellVPageSet& cell = cells[c];
    if (cell.pages.size() != tree.num_nodes()) {
      return Status::InvalidArgument(
          "vertical store: cell V-page set size mismatch");
    }
    pointers[c].assign(tree.num_nodes(), kNilPointer);
    for (size_t node = 0; node < tree.num_nodes(); ++node) {
      const VPage& page = cell.pages[node];
      if (page.empty() || !VPageVisible(page)) {
        continue;
      }
      HDOV_ASSIGN_OR_RETURN(
          uint64_t slot,
          store->vpages_.AppendRecord(SerializeVPage(page, tree.fanout())));
      pointers[c][node] = slot;
    }
  }
  HDOV_RETURN_IF_ERROR(store->vpages_.FinishBuild());

  // Pass 2: the V-page-index — one contiguous file of c segments, each
  // exactly N_node pointers, exactly as the paper lays it out.
  store->segment_bytes_ = tree.num_nodes() * sizeof(uint64_t);
  std::string blob;
  blob.reserve(cells.size() * store->segment_bytes_);
  for (size_t c = 0; c < cells.size(); ++c) {
    for (uint64_t ptr : pointers[c]) {
      EncodeFixed64(&blob, ptr);
    }
  }
  HDOV_ASSIGN_OR_RETURN(store->index_extent_,
                        store->index_file_.Append(blob));
  store->num_cells_ = static_cast<uint32_t>(cells.size());
  return store;
}

Result<std::unique_ptr<VerticalStore>> VerticalStore::Load(
    const HdovTree& tree, std::string_view meta, PageDevice* device) {
  Decoder decoder(meta);
  auto store = std::unique_ptr<VerticalStore>(
      new VerticalStore(device, VPageRecordSize(tree.fanout())));
  HDOV_RETURN_IF_ERROR(DecodeExtent(&decoder, &store->index_extent_));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&store->segment_bytes_));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&store->num_cells_));
  HDOV_RETURN_IF_ERROR(store->vpages_.RestoreMeta(&decoder));
  return store;
}

void VerticalStore::EncodeMeta(std::string* dst) const {
  EncodeExtent(dst, index_extent_);
  EncodeFixed64(dst, segment_bytes_);
  EncodeFixed32(dst, num_cells_);
  vpages_.EncodeMeta(dst);
}

Status VerticalStore::BeginCell(CellId cell) {
  if (cell >= num_cells_) {
    return Status::OutOfRange("vertical store: cell out of range");
  }
  if (cell == current_cell_) {
    return Status::OK();
  }
  ++tstats_.cell_flips;
  // Flip the segment: one sequential scan of N_node pointers.
  HDOV_ASSIGN_OR_RETURN(
      std::string payload,
      index_file_.ReadRange(index_extent_, cell * segment_bytes_,
                            segment_bytes_));
  Decoder decoder(payload);
  segment_.assign(payload.size() / sizeof(uint64_t), kNilPointer);
  for (uint64_t& ptr : segment_) {
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&ptr));
  }
  current_cell_ = cell;
  vpages_.InvalidateCache();
  return Status::OK();
}

bool VerticalStore::FillSegment(std::vector<uint32_t>* nodes,
                                std::vector<uint64_t>* slots) const {
  if (current_cell_ == kInvalidCell) {
    return false;
  }
  nodes->clear();
  slots->clear();
  for (size_t node = 0; node < segment_.size(); ++node) {
    if (segment_[node] != kNilPointer) {
      nodes->push_back(static_cast<uint32_t>(node));
      slots->push_back(segment_[node]);
    }
  }
  return true;
}

Status VerticalStore::ReadVPageAt(uint64_t slot, VPage* page) {
  HDOV_RETURN_IF_ERROR(vpages_.ReadRecord(slot, page));
  ++tstats_.vpage_fetches;
  return Status::OK();
}

Status VerticalStore::GetVPage(uint32_t node_id, VPage* page, bool* visible) {
  if (current_cell_ == kInvalidCell) {
    return Status::FailedPrecondition("vertical store: BeginCell first");
  }
  if (node_id >= segment_.size()) {
    return Status::OutOfRange("vertical store: node out of range");
  }
  const uint64_t ptr = segment_[node_id];
  if (ptr == kNilPointer) {
    // Invisible node: answered from the in-memory segment, no I/O.
    ++tstats_.invisible_lookups;
    page->clear();
    *visible = false;
    return Status::OK();
  }
  HDOV_RETURN_IF_ERROR(vpages_.ReadRecord(ptr, page));
  ++tstats_.vpage_fetches;
  *visible = true;
  return Status::OK();
}

}  // namespace hdov
