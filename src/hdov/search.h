// HdovSearcher: the threshold-based visibility search of the HDoV-tree
// (paper Fig. 3). Given a viewing cell and a DoV threshold eta:
//  - entries with DoV = 0 are pruned (hidden branches cost nothing);
//  - a visible internal entry terminates the descent with one of the child
//    node's internal LoDs when DoV <= eta AND the Eq. 4 heuristic
//    h (1 + log_M s) < log_M NVO says the internal LoD carries fewer
//    polygons than the entry's visible descendants;
//  - internal LoD resolution follows Eq. 5 (blend factor DoV/eta), object
//    LoD resolution follows Eq. 6 (blend factor DoV/MAXDOV, MAXDOV = 0.5).

#ifndef HDOV_HDOV_SEARCH_H_
#define HDOV_HDOV_SEARCH_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "geometry/frustum.h"
#include "hdov/hdov_tree.h"
#include "hdov/visibility_store.h"
#include "scene/object.h"
#include "storage/buffer_pool.h"
#include "storage/model_store.h"
#include "telemetry/trace.h"

namespace hdov {

// Spherical projection of an object never exceeds half the sphere when the
// viewpoint is outside its bounding box (paper §3.3).
inline constexpr double kMaxDov = 0.5;

// The second termination condition of Fig. 3 line 7 (applied after
// DoV <= eta holds).
enum class TerminationHeuristic : uint8_t {
  // The paper's Eq. 4: h (1 + log_M s) < log_M NVO. Assumes descendants
  // would be fetched at full resolution, so it can occasionally terminate
  // where the internal LoD is heavier than the few coarse objects it
  // replaces.
  kEq4 = 0,
  // No second condition: terminate on eta alone (ablation).
  kNone = 1,
  // LoD-aware refinement (extension): estimate the triangles a descent
  // would actually retrieve — NVO objects at the Eq. 6 level of their
  // average DoV — and terminate only when the selected internal LoD is
  // lighter.
  kCostModel = 2,
};

struct SearchOptions {
  // The DoV threshold eta. 0 disables internal-LoD termination entirely
  // (the tree degenerates to the naive cell/list behaviour).
  double eta = 0.001;

  TerminationHeuristic heuristic = TerminationHeuristic::kEq4;

  // kCostModel only: assumed coarsest-LoD fraction of an object chain
  // (matches LodChainOptions::ratios.back() of the scene build).
  double assumed_coarsest_ratio = 0.05;

  // When set, the traversal records a span tree under an open "search"
  // root: a "node" span per visited node with "prune" / "object" /
  // "terminate" / "descend" children carrying DoV, NVO and the Eq. 4
  // operands. Null (the default) costs nothing.
  telemetry::TraceRecorder* trace = nullptr;
};

struct RetrievedLod {
  enum class Kind : uint8_t { kObject = 0, kInternal = 1 };
  Kind kind = Kind::kObject;
  uint64_t owner = 0;  // ObjectId (kObject) or node index (kInternal).
  uint32_t lod_level = 0;
  ModelId model = kInvalidModel;
  uint32_t triangle_count = 0;
  uint64_t byte_size = 0;
  float dov = 0.0f;
};

struct SearchStats {
  uint64_t nodes_visited = 0;
  uint64_t vpages_fetched = 0;
  uint64_t hidden_entries_pruned = 0;
  uint64_t internal_terminations = 0;
};

// Which implementation runs the Fig. 3 traversal. Both produce
// bit-identical results, stats and simulated I/O (pinned by
// tests/flat_search_test.cc); kFlat runs it over the packed
// FlatHdovTree layout (flat_tree.h / flat_search.h).
enum class SearchBackend : uint8_t {
  kLegacy = 0,  // Recursive HdovSearcher over HdovNode vectors.
  kFlat = 1,    // Iterative FlatSearcher over the SoA arena + bitmap index.
};

const char* SearchBackendName(SearchBackend backend);

// Parses "legacy" / "flat"; returns false (leaving *backend alone) on
// anything else.
bool ParseSearchBackend(std::string_view name, SearchBackend* backend);

// Process-wide default backend, seeding VisualOptions::backend. Initialized
// once from the HDOV_SEARCH_BACKEND environment variable ("legacy"/"flat",
// unset or unparseable = kLegacy) so whole test/bench binaries can be
// flipped without touching call sites; mutable for flag plumbing
// (bench --search-backend=...).
SearchBackend& DefaultSearchBackend();

// Reorders a retrieval set for progressive loading (the paper's §3.2
// third advantage and stated future work: "regions that are closer to the
// current view frustum can be traversed first, while regions that are
// outside the view frustum can be delayed"). Representations whose MBR
// intersects the frustum come first, sorted by descending DoV (most
// noticeable first); the rest follow, nearest first. Fetching in this
// order minimizes the time until what the user actually faces is on
// screen.
void PrioritizeRetrieval(const Frustum& frustum, const HdovTree& tree,
                         const Scene& scene,
                         std::vector<RetrievedLod>* result);

class HdovSearcher {
 public:
  // `tree_device` is billed one page read per visited node (pass nullptr
  // to skip node-page billing, e.g. for pure algorithmic tests).
  HdovSearcher(const HdovTree* tree, const Scene* scene,
               const ModelStore* models, PageDevice* tree_device);

  // Runs the Fig. 3 traversal for `cell`. The result lists every LoD
  // representation to retrieve; fetching their model data is the caller's
  // choice (Fig. 8 separates light-weight from total I/O).
  Status Search(VisibilityStore* store, CellId cell,
                const SearchOptions& options, std::vector<RetrievedLod>* result,
                SearchStats* stats = nullptr);

  // Optional LRU pool in front of the tree-node page reads: pages hit in
  // the pool cost no simulated I/O. Null (the default) reads straight from
  // the tree device. The pool must wrap the same device.
  void set_tree_cache(BufferPool* cache) { tree_cache_ = cache; }

 private:
  Status SearchNode(VisibilityStore* store, size_t node_index,
                    const SearchOptions& options,
                    std::vector<RetrievedLod>* result, SearchStats* stats);

  const HdovTree* tree_;
  const Scene* scene_;
  const ModelStore* models_;
  PageDevice* tree_device_;
  BufferPool* tree_cache_ = nullptr;
  double log_fanout_ = 1.0;
  // Several nodes share a page; re-reading the page just read is free
  // (it is still in the transfer buffer).
  PageId last_node_page_ = kInvalidPage;
};

}  // namespace hdov

#endif  // HDOV_HDOV_SEARCH_H_
