#include "hdov/flat_tree.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace hdov {

Result<FlatHdovTree> FlatHdovTree::Compile(const HdovTree& tree) {
  if (tree.num_nodes() == 0) {
    return Status::InvalidArgument("flat tree: empty tree");
  }
  FlatHdovTree flat;
  const size_t n = tree.num_nodes();
  flat.root_ = static_cast<uint32_t>(tree.root_index());
  flat.fanout_ = tree.fanout();
  flat.s_ratio_ = tree.s_ratio();
  flat.height_ = tree.height();

  flat.node_is_leaf_.resize(n);
  flat.node_level_.resize(n);
  flat.node_page_.resize(n);
  flat.entry_begin_.resize(n);
  flat.entry_count_.resize(n);
  flat.lod_begin_.resize(n);
  flat.lod_count_.resize(n);

  // The entry and LoD arenas follow the manifest's DFS order, the same
  // order Pack() streams nodes to disk — a traversal touches the arena
  // near-sequentially just like its page reads.
  size_t total_entries = 0;
  size_t total_lods = 0;
  for (size_t i = 0; i < n; ++i) {
    const HdovNode& node = tree.node(i);
    total_entries += node.entries.size();
    total_lods += node.internal_lods.num_levels();
  }
  flat.entry_mbr_lo_.reserve(total_entries);
  flat.entry_mbr_hi_.reserve(total_entries);
  flat.entry_child_.reserve(total_entries);
  flat.entry_leaf_descendants_.reserve(total_entries);
  flat.entry_subtree_triangles_.reserve(total_entries);
  flat.lod_model_.reserve(total_lods);
  flat.lod_triangles_.reserve(total_lods);
  flat.lod_bytes_.reserve(total_lods);

  for (size_t dfs = 0; dfs < tree.dfs_order().size(); ++dfs) {
    const size_t index = tree.dfs_order()[dfs];
    if (index >= n) {
      return Status::Corruption("flat tree: dfs order out of range");
    }
    const HdovNode& node = tree.node(index);
    if (node.node_id != index) {
      return Status::Corruption("flat tree: node id does not match slot");
    }
    if (node.internal_lods.empty() ||
        node.internal_lod_models.size() != node.internal_lods.num_levels()) {
      return Status::Corruption("flat tree: node missing internal LoDs");
    }
    flat.node_is_leaf_[index] = node.is_leaf ? 1 : 0;
    flat.node_level_[index] = node.level;
    flat.node_page_[index] = node.page;

    flat.entry_begin_[index] = static_cast<uint32_t>(flat.entry_child_.size());
    flat.entry_count_[index] = static_cast<uint32_t>(node.entries.size());
    for (const HdovEntry& e : node.entries) {
      if (!node.is_leaf && e.child >= n) {
        return Status::Corruption("flat tree: child index out of range");
      }
      flat.entry_mbr_lo_.push_back(e.mbr.min);
      flat.entry_mbr_hi_.push_back(e.mbr.max);
      flat.entry_child_.push_back(e.child);
      flat.entry_leaf_descendants_.push_back(e.leaf_descendants);
      flat.entry_subtree_triangles_.push_back(e.subtree_triangles);
    }

    flat.lod_begin_[index] = static_cast<uint32_t>(flat.lod_model_.size());
    flat.lod_count_[index] =
        static_cast<uint32_t>(node.internal_lods.num_levels());
    for (size_t l = 0; l < node.internal_lods.num_levels(); ++l) {
      flat.lod_model_.push_back(node.internal_lod_models[l]);
      flat.lod_triangles_.push_back(node.internal_lods.level(l).triangle_count);
      flat.lod_bytes_.push_back(node.internal_lods.level(l).byte_size);
    }
  }

  // Flattened object LoD model table.
  const auto& object_models = tree.object_models();
  flat.object_model_begin_.reserve(object_models.size() + 1);
  flat.object_model_begin_.push_back(0);
  for (const std::vector<ModelId>& chain : object_models) {
    flat.object_model_.insert(flat.object_model_.end(), chain.begin(),
                              chain.end());
    flat.object_model_begin_.push_back(
        static_cast<uint32_t>(flat.object_model_.size()));
  }

  // Static per-tree-level node bitmaps.
  const size_t words = (n + 63) / 64;
  flat.level_nodes_.assign(static_cast<size_t>(flat.height_),
                           std::vector<uint64_t>(words, 0));
  for (size_t i = 0; i < n; ++i) {
    const int level = flat.node_level_[i];
    if (level < 0 || level >= flat.height_) {
      return Status::Corruption("flat tree: node level out of range");
    }
    flat.level_nodes_[level][i >> 6] |= 1ull << (i & 63);
  }
  return flat;
}

Aabb FlatHdovTree::NodeBoundingBox(uint32_t n) const {
  Aabb box;
  const uint32_t begin = entry_begin_[n];
  const uint32_t end = begin + entry_count_[n];
  for (uint32_t slot = begin; slot < end; ++slot) {
    box.Extend(Aabb(entry_mbr_lo_[slot], entry_mbr_hi_[slot]));
  }
  return box;
}

uint32_t FlatHdovTree::InternalLevelForBlend(uint32_t n, double k) const {
  k = std::clamp(k, 0.0, 1.0);
  const uint32_t begin = lod_begin_[n];
  const uint32_t count = lod_count_[n];
  const double finest_count = lod_triangles_[begin];
  const double coarsest_count = lod_triangles_[begin + count - 1];
  const double budget = k * finest_count + (1.0 - k) * coarsest_count;
  uint32_t best = 0;
  double best_gap = std::numeric_limits<double>::infinity();
  for (uint32_t i = 0; i < count; ++i) {
    const double gap =
        std::fabs(static_cast<double>(lod_triangles_[begin + i]) - budget);
    if (gap < best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  return best;
}

uint32_t FlatHdovTree::CountAtLevel(int level) const {
  uint32_t count = 0;
  for (uint64_t word : level_nodes_[level]) {
    count += static_cast<uint32_t>(std::popcount(word));
  }
  return count;
}

Status FlatHdovTree::CheckInvariants() const {
  const size_t n = num_nodes();
  if (n == 0) {
    return Status::Internal("flat tree: no nodes");
  }
  if (root_ >= n) {
    return Status::Internal("flat tree: root out of range");
  }
  size_t entries_seen = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto node = static_cast<uint32_t>(i);
    if (entry_count(node) == 0) {
      return Status::Internal("flat tree: empty node");
    }
    if (entry_begin(node) + entry_count(node) > num_entries()) {
      return Status::Internal("flat tree: entry arena overrun");
    }
    if (lod_count(node) == 0 ||
        lod_begin(node) + lod_count(node) > lod_model_.size()) {
      return Status::Internal("flat tree: internal LoD arena overrun");
    }
    entries_seen += entry_count(node);
    // Internal LoD chains must be finest-first (strictly decreasing
    // triangle counts), or Eq. 5 blending is meaningless.
    for (uint32_t l = 1; l < lod_count(node); ++l) {
      if (lod_triangles_[lod_begin(node) + l] >=
          lod_triangles_[lod_begin(node) + l - 1]) {
        return Status::Internal("flat tree: internal LoDs not decreasing");
      }
    }
    if (is_leaf(node)) {
      if (level(node) != 0) {
        return Status::Internal("flat tree: leaf at nonzero level");
      }
      for (uint32_t e = 0; e < entry_count(node); ++e) {
        const uint32_t slot = entry_begin(node) + e;
        if (entry_leaf_descendants_[slot] != 1) {
          return Status::Internal("flat tree: leaf entry descendant != 1");
        }
        if (entry_child_[slot] >= num_objects()) {
          return Status::Internal("flat tree: object id out of range");
        }
      }
      continue;
    }
    for (uint32_t e = 0; e < entry_count(node); ++e) {
      const uint32_t slot = entry_begin(node) + e;
      const uint64_t child = entry_child_[slot];
      if (child >= n) {
        return Status::Internal("flat tree: child index out of range");
      }
      const auto child_node = static_cast<uint32_t>(child);
      if (level(child_node) != level(node) - 1) {
        return Status::Internal("flat tree: child level mismatch");
      }
      if (!(EntryMbr(slot) == NodeBoundingBox(child_node))) {
        return Status::Internal("flat tree: stale entry MBR");
      }
      uint32_t descendants = 0;
      uint64_t triangles = 0;
      for (uint32_t ce = 0; ce < entry_count(child_node); ++ce) {
        const uint32_t child_slot = entry_begin(child_node) + ce;
        descendants += entry_leaf_descendants_[child_slot];
        triangles += entry_subtree_triangles_[child_slot];
      }
      if (descendants != entry_leaf_descendants_[slot]) {
        return Status::Internal("flat tree: descendant count mismatch");
      }
      if (triangles != entry_subtree_triangles_[slot]) {
        return Status::Internal("flat tree: subtree triangle sum mismatch");
      }
    }
  }
  if (entries_seen != num_entries()) {
    return Status::Internal("flat tree: entry arena not fully covered");
  }
  return Status::OK();
}

void VPageBitmapIndex::Rebuild(uint32_t num_nodes,
                               const std::vector<uint32_t>& nodes,
                               const std::vector<uint64_t>& slots) {
  num_nodes_ = num_nodes;
  const size_t words = (static_cast<size_t>(num_nodes) + 63) / 64;
  words_.assign(words, 0);
  summary_.assign((words + 63) / 64, 0);
  for (uint32_t id : nodes) {
    words_[id >> 6] |= 1ull << (id & 63);
  }
  rank_.assign(words + 1, 0);
  for (size_t w = 0; w < words; ++w) {
    rank_[w + 1] =
        rank_[w] + static_cast<uint32_t>(std::popcount(words_[w]));
    if (words_[w] != 0) {
      summary_[w >> 6] |= 1ull << (w & 63);
    }
  }
  slots_ = slots;
}

void VPageBitmapIndex::Clear() {
  num_nodes_ = 0;
  words_.clear();
  summary_.clear();
  rank_.clear();
  slots_.clear();
}

uint32_t VPageBitmapIndex::Rank(uint32_t node_id) const {
  if (node_id >= num_nodes_) {
    return visible_count();
  }
  const uint32_t word = node_id >> 6;
  const uint64_t below = (1ull << (node_id & 63)) - 1;
  return rank_[word] +
         static_cast<uint32_t>(std::popcount(words_[word] & below));
}

bool VPageBitmapIndex::Lookup(uint32_t node_id, uint64_t* slot) const {
  if (node_id >= num_nodes_) {
    return false;
  }
  const uint32_t word = node_id >> 6;
  const uint64_t bit = 1ull << (node_id & 63);
  const uint64_t bits = words_[word];
  if ((bits & bit) == 0) {
    return false;
  }
  const uint32_t rank =
      rank_[word] + static_cast<uint32_t>(std::popcount(bits & (bit - 1)));
  *slot = slots_[rank];
  return true;
}

uint32_t VPageBitmapIndex::NextVisible(uint32_t from) const {
  if (from >= num_nodes_) {
    return kNotFound;
  }
  uint32_t word = from >> 6;
  // Tail of the starting word.
  const uint64_t masked = words_[word] & (~0ull << (from & 63));
  if (masked != 0) {
    return (word << 6) + static_cast<uint32_t>(std::countr_zero(masked));
  }
  // Summary probe: skip straight to the next non-empty word.
  ++word;
  const auto num_words = static_cast<uint32_t>(words_.size());
  while (word < num_words) {
    const uint32_t sword = word >> 6;
    const uint64_t sbits = summary_[sword] & (~0ull << (word & 63));
    if (sbits == 0) {
      word = (sword + 1) << 6;
      continue;
    }
    word = (sword << 6) + static_cast<uint32_t>(std::countr_zero(sbits));
    return (word << 6) + static_cast<uint32_t>(std::countr_zero(words_[word]));
  }
  return kNotFound;
}

}  // namespace hdov
