// Horizontal storage scheme (paper §4.1): every node keeps an array of
// V-pages indexed by cell id, so a V-page slot is reserved for every
// (node, cell) pair whether or not the node is visible there. One V-page
// access per visited node; no cell-flip cost; very large storage
// (size_vpage * c * N_node) and scattered (seek-heavy) reads, because the
// V-pages of one cell are spread across the whole file.

#ifndef HDOV_HDOV_HORIZONTAL_STORE_H_
#define HDOV_HDOV_HORIZONTAL_STORE_H_

#include <memory>

#include "common/result.h"
#include "hdov/hdov_tree.h"
#include "hdov/visibility_store.h"

namespace hdov {

class HorizontalStore : public VisibilityStore {
 public:
  static Result<std::unique_ptr<HorizontalStore>> Build(
      const HdovTree& tree, const std::vector<CellVPageSet>& cells,
      PageDevice* device);

  // Reattaches a built store to a restored device image from EncodeMeta
  // output (no I/O billed).
  static Result<std::unique_ptr<HorizontalStore>> Load(const HdovTree& tree,
                                                       std::string_view meta,
                                                       PageDevice* device);

  std::string name() const override { return "horizontal"; }
  Status BeginCell(CellId cell) override;
  Status GetVPage(uint32_t node_id, VPage* page, bool* visible) override;
  uint64_t SizeBytes() const override { return device_->SizeBytes(); }
  PageDevice* device() const override { return device_; }
  void EncodeMeta(std::string* dst) const override;

 private:
  HorizontalStore(PageDevice* device, size_t record_size, uint32_t num_cells)
      : device_(device), file_(device, record_size), num_cells_(num_cells) {}

  PageDevice* device_;
  VPageFile file_;
  uint32_t num_cells_;
  CellId current_cell_ = kInvalidCell;
};

}  // namespace hdov

#endif  // HDOV_HDOV_HORIZONTAL_STORE_H_
