// V-pages: the view-variant visibility records of the HDoV-tree (paper
// §4). A V-page holds one VD entry per tree-node entry, where
// VD = (DoV, NVO): the degree of visibility and the number of visible
// objects under that entry, both specific to one viewing cell.
//
// V-pages are fixed-size records (capacity = the tree's fanout) so a
// node's V-page can be located by offset arithmetic; several V-pages are
// packed per device page.

#ifndef HDOV_HDOV_VPAGE_H_
#define HDOV_HDOV_VPAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hdov {

struct VdEntry {
  float dov = 0.0f;   // Degree of visibility (0 = hidden).
  uint32_t nvo = 0;   // Number of visible objects under the entry.
};

using VPage = std::vector<VdEntry>;

// Serialized byte size of a fixed-capacity V-page record.
inline constexpr size_t VPageRecordSize(size_t capacity) {
  return sizeof(uint32_t) + capacity * (sizeof(float) + sizeof(uint32_t));
}

// Serializes `page` into a record of exactly VPageRecordSize(capacity)
// bytes. page.size() must be <= capacity.
std::string SerializeVPage(const VPage& page, size_t capacity);

Status ParseVPage(std::string_view data, VPage* page);

// Sum of the DoV fields (the node's aggregate DoV, paper attribute 2).
double VPageDovSum(const VPage& page);

// Sum of the NVO fields.
uint64_t VPageNvoSum(const VPage& page);

// True when any entry has DoV > 0 (the node is visible in this cell).
bool VPageVisible(const VPage& page);

}  // namespace hdov

#endif  // HDOV_HDOV_VPAGE_H_
