// HdovTree: the Hierarchical Degree-of-Visibility tree (paper §3.2).
//
// The backbone is an R-tree over object MBRs; on top of it every node
// carries internal LoDs (coarse stand-ins for the aggregate of all objects
// below the node), and every entry is paired — per viewing cell — with a
// view-variant VD = (DoV, NVO) record kept in V-pages by one of the three
// storage schemes (see visibility_store.h).
//
// View-invariant data (topology, MBRs, LoD pointers, descendant counts)
// lives in the tree nodes, serialized one node per device page. The
// view-variant V-pages live in a VisibilityStore.

#ifndef HDOV_HDOV_HDOV_TREE_H_
#define HDOV_HDOV_HDOV_TREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "geometry/aabb.h"
#include "scene/object.h"
#include "simplify/lod_chain.h"
#include "storage/model_store.h"
#include "storage/page_device.h"
#include "storage/paged_file.h"

namespace hdov {

struct HdovEntry {
  Aabb mbr;
  // Leaf entry: the ObjectId. Internal entry: the child node index.
  uint64_t child = 0;
  // m — number of leaf objects in the entry's subtree (1 for leaf
  // entries); input to the Eq. 4 termination heuristic.
  uint32_t leaf_descendants = 1;
  // Sum of finest-LoD triangle counts over the entry's subtree; input to
  // the cost-model termination heuristic (an LoD-aware refinement of
  // Eq. 4, see SearchOptions::heuristic).
  uint64_t subtree_triangles = 0;
};

struct HdovNode {
  bool is_leaf = true;
  int level = 0;        // 0 at leaves.
  uint32_t node_id = 0; // Dense DFS index; doubles as V-page-index offset.
  // On-disk location, assigned by Pack(). Several small nodes share one
  // page (packed in DFS order), so a traversal's node reads are mostly
  // sequential within pages.
  PageId page = kInvalidPage;
  uint32_t page_offset = 0;
  std::vector<HdovEntry> entries;

  // Internal LoDs: coarse representations of the aggregation of all
  // objects under this node, finest internal level first.
  LodChain internal_lods;
  std::vector<ModelId> internal_lod_models;  // Parallel to internal_lods.

  Aabb BoundingBox() const {
    Aabb box;
    for (const HdovEntry& e : entries) {
      box.Extend(e.mbr);
    }
    return box;
  }
};

class HdovTree {
 public:
  HdovTree() = default;

  const HdovNode& node(size_t index) const { return nodes_[index]; }
  HdovNode& mutable_node(size_t index) { return nodes_[index]; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t root_index() const { return root_; }
  int height() const { return nodes_.empty() ? 0 : nodes_[root_].level + 1; }

  // Fanout M of the backbone R-tree (used as log base in Eq. 4).
  size_t fanout() const { return fanout_; }

  // Average polygon ratio s = npoly(node) / sum npoly(children) across
  // internal nodes (the paper's `s`, estimated at build time).
  double s_ratio() const { return s_ratio_; }

  // Object LoD model ids: object_models()[object_id][lod_level].
  const std::vector<std::vector<ModelId>>& object_models() const {
    return object_models_;
  }

  // Nodes in depth-first preorder (node_id order). Visiting the reverse of
  // this order processes children before parents.
  const std::vector<size_t>& dfs_order() const { return dfs_order_; }

  // Serializes every node to `device` in DFS order, packing as many nodes
  // per page as fit, and records (page, page_offset) in the nodes. Fails
  // if a single node exceeds the page size.
  Status Pack(PageDevice* device);

  // Reads back and decodes the node stored at (page, page_offset) — billed
  // I/O; used to verify the on-disk image and by disk-resident traversal
  // tests.
  static Result<HdovNode> ReadNode(PageDevice* device, PageId page,
                                   uint32_t page_offset);

  static std::string SerializeNode(const HdovNode& node);

  // Serializes the tree manifest — node locations, fanout, s ratio and the
  // object LoD model table — into `out`. Requires Pack() first.
  Status EncodeManifest(std::string* out) const;

  // Restores a tree from Pack()'ed node pages plus EncodeManifest bytes.
  // Node reads are billed on `device` like any traversal.
  static Result<HdovTree> FromManifest(PageDevice* device,
                                       std::string_view manifest);

  // Writes the tree manifest as one extent of `file` (which must wrap the
  // same device Pack() wrote to, or another one). Together with the device
  // image (PageDevice::SaveToFile) this makes the tree fully persistent.
  Result<Extent> WriteManifest(PagedFile* file) const;

  // Restores a tree from Pack()'ed node pages plus a manifest extent.
  static Result<HdovTree> LoadFrom(PageDevice* device, PagedFile* file,
                                   const Extent& manifest);

  // Structural invariants: entry/descendant-count consistency, MBR
  // containment, level consistency, internal LoD presence.
  Status CheckInvariants() const;

 private:
  friend class HdovBuilder;

  std::vector<HdovNode> nodes_;
  size_t root_ = 0;
  size_t fanout_ = 0;
  double s_ratio_ = 0.25;
  std::vector<std::vector<ModelId>> object_models_;
  std::vector<size_t> dfs_order_;
};

}  // namespace hdov

#endif  // HDOV_HDOV_HDOV_TREE_H_
