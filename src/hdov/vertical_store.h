// Vertical storage scheme (paper §4.2): a V-page-index segmented by cell —
// each segment holds N_node V-page pointers (nil for invisible nodes) —
// plus V-pages of visible nodes only, clustered per cell in depth-first
// node order so a query's V-page accesses form a near-sequential scan.
// Changing cells "flips" the segment: O(N_node) sequential I/O.

#ifndef HDOV_HDOV_VERTICAL_STORE_H_
#define HDOV_HDOV_VERTICAL_STORE_H_

#include <memory>

#include "common/result.h"
#include "hdov/hdov_tree.h"
#include "hdov/visibility_store.h"
#include "storage/paged_file.h"

namespace hdov {

class VerticalStore : public VisibilityStore {
 public:
  static Result<std::unique_ptr<VerticalStore>> Build(
      const HdovTree& tree, const std::vector<CellVPageSet>& cells,
      PageDevice* device);

  // Reattaches a built store to a restored device image from EncodeMeta
  // output (no I/O billed).
  static Result<std::unique_ptr<VerticalStore>> Load(const HdovTree& tree,
                                                     std::string_view meta,
                                                     PageDevice* device);

  std::string name() const override { return "vertical"; }
  Status BeginCell(CellId cell) override;
  Status GetVPage(uint32_t node_id, VPage* page, bool* visible) override;
  bool FillSegment(std::vector<uint32_t>* nodes,
                   std::vector<uint64_t>* slots) const override;
  Status ReadVPageAt(uint64_t slot, VPage* page) override;
  uint64_t SizeBytes() const override { return device_->SizeBytes(); }
  PageDevice* device() const override { return device_; }
  void EncodeMeta(std::string* dst) const override;

 private:
  static constexpr uint64_t kNilPointer = ~static_cast<uint64_t>(0);

  VerticalStore(PageDevice* device, size_t record_size)
      : device_(device), index_file_(device), vpages_(device, record_size) {}

  PageDevice* device_;
  PagedFile index_file_;          // One contiguous V-page-index blob.
  Extent index_extent_;           // All segments; cell c at c * N * 8 bytes.
  uint64_t segment_bytes_ = 0;    // N_node * sizeof(uint64_t).
  uint32_t num_cells_ = 0;
  VPageFile vpages_;              // Per-cell clustered V-pages.
  CellId current_cell_ = kInvalidCell;
  std::vector<uint64_t> segment_;  // Current cell's pointer segment.
};

}  // namespace hdov

#endif  // HDOV_HDOV_VERTICAL_STORE_H_
