// LodChain: the multi-resolution pyramid of a model (object LoDs) or of a
// node aggregate (internal LoDs). Level 0 is the finest representation.
//
// The chain exists in two modes:
//  - full: each level carries a real simplified TriangleMesh;
//  - proxy: only triangle counts and logical byte sizes are kept, which
//    lets scalability experiments reach the paper's multi-GB dataset sizes
//    without materializing geometry.

#ifndef HDOV_SIMPLIFY_LOD_CHAIN_H_
#define HDOV_SIMPLIFY_LOD_CHAIN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "mesh/triangle_mesh.h"
#include "simplify/simplifier.h"

namespace hdov {

struct LodLevel {
  TriangleMesh mesh;        // Empty in proxy mode.
  uint32_t triangle_count = 0;
  uint64_t byte_size = 0;   // Logical on-disk size of this representation.
};

struct LodChainOptions {
  // Triangle-count fractions of the input, finest first. The first entry is
  // normally 1.0 (keep the original as the highest LoD).
  std::vector<double> ratios = {1.0, 0.4, 0.15, 0.05};

  // Logical bytes per triangle: ~3 corners x (position + normal + uv +
  // color) in a typical interleaved vertex layout. This scales the logical
  // dataset size the storage layer bills for.
  uint64_t bytes_per_triangle = 224;

  // Never simplify below this many triangles (keeps LoDs renderable).
  uint32_t min_triangles = 16;

  SimplifyOptions simplify;
};

class LodChain {
 public:
  LodChain() = default;

  // Builds a full chain by repeated QEM simplification of `mesh`.
  static Result<LodChain> Build(const TriangleMesh& mesh,
                                const LodChainOptions& options);

  // Builds a proxy chain (counts and sizes only) for an object whose finest
  // representation would have `finest_triangles` triangles.
  static LodChain Proxy(uint32_t finest_triangles,
                        const LodChainOptions& options);

  // Reassembles a chain from explicit levels (finest first) — used when
  // deserializing trees from disk. Levels must have strictly decreasing
  // triangle counts.
  static Result<LodChain> FromLevels(std::vector<LodLevel> levels);

  size_t num_levels() const { return levels_.size(); }
  bool empty() const { return levels_.empty(); }
  bool is_proxy() const {
    return !levels_.empty() && levels_.front().mesh.empty();
  }

  // i = 0 is the finest level; i = num_levels() - 1 the coarsest.
  const LodLevel& level(size_t i) const { return levels_[i]; }
  const LodLevel& finest() const { return levels_.front(); }
  const LodLevel& coarsest() const { return levels_.back(); }

  uint64_t total_bytes() const;

  // Resolves the paper's LoD interpolation (Eqs. 5 and 6): given blend
  // factor k in [0, 1], the target polygon budget is
  //   k * npoly(finest) + (1 - k) * npoly(coarsest),
  // and the returned index is the level whose count is nearest that budget
  // (k = 1 -> finest level, k = 0 -> coarsest).
  size_t LevelForBlend(double k) const;

 private:
  std::vector<LodLevel> levels_;
};

}  // namespace hdov

#endif  // HDOV_SIMPLIFY_LOD_CHAIN_H_
