#include "simplify/quadric.h"

#include <cmath>

#include "geometry/intersect.h"

namespace hdov {

Quadric Quadric::FromPlane(const Vec3& n, double d, double weight) {
  Quadric q;
  const double a = n.x, b = n.y, c = n.z;
  q.c_[0] = weight * a * a;
  q.c_[1] = weight * a * b;
  q.c_[2] = weight * a * c;
  q.c_[3] = weight * a * d;
  q.c_[4] = weight * b * b;
  q.c_[5] = weight * b * c;
  q.c_[6] = weight * b * d;
  q.c_[7] = weight * c * c;
  q.c_[8] = weight * c * d;
  q.c_[9] = weight * d * d;
  return q;
}

Quadric Quadric::FromTriangle(const Vec3& a, const Vec3& b, const Vec3& c) {
  Vec3 n = (b - a).Cross(c - a);
  const double double_area = n.Length();
  if (double_area < 1e-30) {
    return Quadric();
  }
  n = n / double_area;
  const double d = -n.Dot(a);
  return FromPlane(n, d, 0.5 * double_area);
}

Quadric& Quadric::operator+=(const Quadric& o) {
  for (size_t i = 0; i < c_.size(); ++i) {
    c_[i] += o.c_[i];
  }
  return *this;
}

double Quadric::Error(const Vec3& v) const {
  const double x = v.x, y = v.y, z = v.z;
  double e = c_[0] * x * x + 2.0 * c_[1] * x * y + 2.0 * c_[2] * x * z +
             2.0 * c_[3] * x + c_[4] * y * y + 2.0 * c_[5] * y * z +
             2.0 * c_[6] * y + c_[7] * z * z + 2.0 * c_[8] * z + c_[9];
  return e > 0.0 ? e : 0.0;
}

std::optional<Vec3> Quadric::OptimalPoint() const {
  // Solve [A | -b] where A is the upper-left 3x3 block and b the last column.
  const double a11 = c_[0], a12 = c_[1], a13 = c_[2], b1 = c_[3];
  const double a22 = c_[4], a23 = c_[5], b2 = c_[6];
  const double a33 = c_[7], b3 = c_[8];

  const double det = a11 * (a22 * a33 - a23 * a23) -
                     a12 * (a12 * a33 - a23 * a13) +
                     a13 * (a12 * a23 - a22 * a13);
  // Relative conditioning guard: a flat quadric (all planes parallel) has a
  // (near-)singular A, in which case the caller falls back to endpoints.
  const double scale = std::fabs(a11) + std::fabs(a22) + std::fabs(a33);
  if (std::fabs(det) < 1e-12 * scale * scale * scale + 1e-300) {
    return std::nullopt;
  }
  const double inv_det = 1.0 / det;
  // Cramer's rule for A x = -b.
  const double rx = -(b1 * (a22 * a33 - a23 * a23) -
                      a12 * (b2 * a33 - a23 * b3) +
                      a13 * (b2 * a23 - a22 * b3)) *
                    inv_det;
  const double ry = -(a11 * (b2 * a33 - b3 * a23) -
                      b1 * (a12 * a33 - a23 * a13) +
                      a13 * (a12 * b3 - b2 * a13)) *
                    inv_det;
  const double rz = -(a11 * (a22 * b3 - a23 * b2) -
                      a12 * (a12 * b3 - b2 * a13) +
                      b1 * (a12 * a23 - a22 * a13)) *
                    inv_det;
  if (!std::isfinite(rx) || !std::isfinite(ry) || !std::isfinite(rz)) {
    return std::nullopt;
  }
  return Vec3(rx, ry, rz);
}

}  // namespace hdov
