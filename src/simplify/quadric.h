// Quadric: the symmetric 4x4 error quadric of Garland & Heckbert
// ("Surface Simplification Using Quadric Error Metrics", SIGGRAPH 97) —
// the algorithm behind qslim, which the paper uses to build internal LoDs.
//
// A quadric Q represents the sum of squared distances to a set of planes;
// Error(v) = v^T Q v for homogeneous v = (x, y, z, 1).

#ifndef HDOV_SIMPLIFY_QUADRIC_H_
#define HDOV_SIMPLIFY_QUADRIC_H_

#include <array>
#include <optional>

#include "geometry/vec3.h"

namespace hdov {

class Quadric {
 public:
  Quadric() = default;

  // Quadric of the plane n·p + d = 0 (n unit length), optionally weighted
  // (area weighting makes the metric scale-aware).
  static Quadric FromPlane(const Vec3& n, double d, double weight = 1.0);

  // Quadric of the supporting plane of triangle (a, b, c), weighted by the
  // triangle's area. Degenerate triangles contribute the zero quadric.
  static Quadric FromTriangle(const Vec3& a, const Vec3& b, const Vec3& c);

  Quadric& operator+=(const Quadric& o);
  friend Quadric operator+(Quadric a, const Quadric& b) { return a += b; }

  // v^T Q v; clamped at 0 to absorb tiny negative values from rounding.
  double Error(const Vec3& v) const;

  // The point minimizing the error, when the 3x3 system is well
  // conditioned; nullopt for flat/degenerate quadrics.
  std::optional<Vec3> OptimalPoint() const;

  // Coefficients in row-major upper-triangle order:
  // [a11 a12 a13 a14 a22 a23 a24 a33 a34 a44].
  const std::array<double, 10>& coefficients() const { return c_; }

 private:
  std::array<double, 10> c_{};  // Zero-initialized: the additive identity.
};

}  // namespace hdov

#endif  // HDOV_SIMPLIFY_QUADRIC_H_
