#include "simplify/lod_chain.h"

#include <algorithm>
#include <cmath>

namespace hdov {

Result<LodChain> LodChain::Build(const TriangleMesh& mesh,
                                 const LodChainOptions& options) {
  if (options.ratios.empty()) {
    return Status::InvalidArgument("lod chain: ratios must not be empty");
  }
  LodChain chain;
  const auto total = static_cast<double>(mesh.triangle_count());
  uint32_t previous_count = 0;
  for (size_t i = 0; i < options.ratios.size(); ++i) {
    const double ratio = options.ratios[i];
    if (ratio <= 0.0 || ratio > 1.0) {
      return Status::InvalidArgument("lod chain: ratio out of (0, 1]");
    }
    const auto target = static_cast<size_t>(
        std::max<double>(options.min_triangles, std::ceil(total * ratio)));
    LodLevel level;
    if (i == 0 && ratio == 1.0) {
      level.mesh = mesh;
    } else {
      SimplifyOptions simp = options.simplify;
      simp.target_triangles = target;
      HDOV_ASSIGN_OR_RETURN(level.mesh, Simplify(mesh, simp));
    }
    level.triangle_count = static_cast<uint32_t>(level.mesh.triangle_count());
    level.byte_size = level.triangle_count * options.bytes_per_triangle;
    // Skip levels that failed to get meaningfully coarser than their
    // predecessor — duplicated levels waste storage and add no fidelity.
    if (!chain.levels_.empty() &&
        level.triangle_count >= previous_count) {
      continue;
    }
    previous_count = level.triangle_count;
    chain.levels_.push_back(std::move(level));
  }
  if (chain.levels_.empty()) {
    return Status::Internal("lod chain: produced no levels");
  }
  return chain;
}

LodChain LodChain::Proxy(uint32_t finest_triangles,
                         const LodChainOptions& options) {
  LodChain chain;
  uint32_t previous_count = 0;
  for (size_t i = 0; i < options.ratios.size(); ++i) {
    auto count = static_cast<uint32_t>(std::max<double>(
        options.min_triangles,
        std::ceil(finest_triangles * options.ratios[i])));
    if (!chain.levels_.empty() && count >= previous_count) {
      continue;
    }
    LodLevel level;
    level.triangle_count = count;
    level.byte_size = count * options.bytes_per_triangle;
    previous_count = count;
    chain.levels_.push_back(std::move(level));
  }
  if (chain.levels_.empty()) {
    LodLevel level;
    level.triangle_count = std::max(options.min_triangles, finest_triangles);
    level.byte_size = level.triangle_count * options.bytes_per_triangle;
    chain.levels_.push_back(std::move(level));
  }
  return chain;
}

Result<LodChain> LodChain::FromLevels(std::vector<LodLevel> levels) {
  if (levels.empty()) {
    return Status::InvalidArgument("lod chain: no levels");
  }
  for (size_t i = 1; i < levels.size(); ++i) {
    if (levels[i].triangle_count >= levels[i - 1].triangle_count) {
      return Status::InvalidArgument(
          "lod chain: levels must be strictly decreasing");
    }
  }
  LodChain chain;
  chain.levels_ = std::move(levels);
  return chain;
}

uint64_t LodChain::total_bytes() const {
  uint64_t total = 0;
  for (const LodLevel& level : levels_) {
    total += level.byte_size;
  }
  return total;
}

size_t LodChain::LevelForBlend(double k) const {
  k = std::clamp(k, 0.0, 1.0);
  const double finest_count = finest().triangle_count;
  const double coarsest_count = coarsest().triangle_count;
  const double budget = k * finest_count + (1.0 - k) * coarsest_count;
  size_t best = 0;
  double best_gap = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < levels_.size(); ++i) {
    double gap = std::fabs(static_cast<double>(levels_[i].triangle_count) -
                           budget);
    if (gap < best_gap) {
      best_gap = gap;
      best = i;
    }
  }
  return best;
}

}  // namespace hdov
