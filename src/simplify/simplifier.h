// Edge-collapse mesh simplification driven by quadric error metrics — a
// from-scratch implementation of the qslim algorithm (Garland & Heckbert,
// SIGGRAPH 97) that the paper uses to generate object and internal LoDs.

#ifndef HDOV_SIMPLIFY_SIMPLIFIER_H_
#define HDOV_SIMPLIFY_SIMPLIFIER_H_

#include <cstddef>
#include <limits>

#include "common/result.h"
#include "mesh/triangle_mesh.h"

namespace hdov {

struct SimplifyOptions {
  // Stop once at most this many triangles remain.
  size_t target_triangles = 0;

  // Stop early when the cheapest remaining collapse would cost more than
  // this (squared-distance units). Infinity = never stop early.
  double max_error = std::numeric_limits<double>::infinity();

  // Merge coincident vertices before simplifying. Procedurally generated
  // meshes (and many exported models) duplicate vertices along seams; the
  // collapse graph needs them merged to cross those seams.
  bool weld_vertices = true;
  double weld_epsilon = 1e-6;

  // Penalize moving boundary edges by adding perpendicular constraint
  // planes (standard qslim boundary handling).
  double boundary_weight = 100.0;

  // Reject collapses that flip a surviving triangle's normal.
  bool prevent_flips = true;
};

// Returns the simplified mesh. The input is never modified. Fails with
// InvalidArgument for malformed meshes.
Result<TriangleMesh> Simplify(const TriangleMesh& input,
                              const SimplifyOptions& options);

// Merges vertices closer than `epsilon` (grid hashing; deterministic) and
// drops triangles that become degenerate.
TriangleMesh WeldVertices(const TriangleMesh& input, double epsilon);

}  // namespace hdov

#endif  // HDOV_SIMPLIFY_SIMPLIFIER_H_
