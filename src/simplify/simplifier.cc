#include "simplify/simplifier.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "simplify/quadric.h"

namespace hdov {

namespace {

struct EdgeCandidate {
  double cost;
  uint32_t v0;
  uint32_t v1;
  Vec3 target;
  uint64_t version;  // Sum of both endpoint versions at push time.

  bool operator<(const EdgeCandidate& o) const {
    return cost > o.cost;  // Min-heap via priority_queue.
  }
};

uint64_t EdgeKey(uint32_t a, uint32_t b) {
  if (a > b) {
    std::swap(a, b);
  }
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Working state for one simplification run.
class Simplifier {
 public:
  Simplifier(const TriangleMesh& mesh, const SimplifyOptions& options)
      : options_(options),
        positions_(mesh.vertices()),
        quadrics_(mesh.vertex_count()),
        versions_(mesh.vertex_count(), 0),
        vertex_alive_(mesh.vertex_count(), true) {
    tris_.reserve(mesh.triangle_count());
    for (const Triangle& t : mesh.triangles()) {
      tris_.push_back(t);
    }
    tri_alive_.assign(tris_.size(), true);
    adjacency_.resize(positions_.size());
    for (size_t t = 0; t < tris_.size(); ++t) {
      for (uint32_t v : tris_[t].v) {
        adjacency_[v].push_back(static_cast<uint32_t>(t));
      }
    }
    alive_triangles_ = tris_.size();
  }

  TriangleMesh Run() {
    AccumulateQuadrics();
    SeedQueue();
    while (alive_triangles_ > options_.target_triangles && !queue_.empty()) {
      EdgeCandidate cand = queue_.top();
      queue_.pop();
      if (!IsCurrent(cand)) {
        continue;
      }
      if (cand.cost > options_.max_error) {
        break;
      }
      if (options_.prevent_flips && WouldFlip(cand)) {
        // Penalize and retry later rather than discarding outright: the
        // neighborhood may open up after other collapses.
        if (rejections_[EdgeKey(cand.v0, cand.v1)]++ < 3) {
          cand.cost = cand.cost * 4.0 + 1e-12;
          queue_.push(cand);
        }
        continue;
      }
      Collapse(cand);
    }
    return BuildResult();
  }

 private:
  void AccumulateQuadrics() {
    for (size_t t = 0; t < tris_.size(); ++t) {
      auto [a, b, c] = TriVerts(t);
      Quadric q = Quadric::FromTriangle(a, b, c);
      for (uint32_t v : tris_[t].v) {
        quadrics_[v] += q;
      }
    }
    if (options_.boundary_weight > 0.0) {
      AddBoundaryConstraints();
    }
  }

  // An edge is a boundary edge when exactly one alive triangle uses it.
  // Each boundary edge contributes a constraint plane perpendicular to its
  // triangle, which penalizes collapses that erode the boundary.
  void AddBoundaryConstraints() {
    std::unordered_map<uint64_t, int> edge_use;
    std::unordered_map<uint64_t, uint32_t> edge_tri;
    for (size_t t = 0; t < tris_.size(); ++t) {
      const Triangle& tri = tris_[t];
      for (int e = 0; e < 3; ++e) {
        uint64_t key = EdgeKey(tri.v[e], tri.v[(e + 1) % 3]);
        edge_use[key]++;
        edge_tri[key] = static_cast<uint32_t>(t);
      }
    }
    for (const auto& [key, count] : edge_use) {
      if (count != 1) {
        continue;
      }
      uint32_t va = static_cast<uint32_t>(key >> 32);
      uint32_t vb = static_cast<uint32_t>(key & 0xffffffffu);
      const Vec3& a = positions_[va];
      const Vec3& b = positions_[vb];
      size_t t = edge_tri[key];
      auto [ta, tb, tc] = TriVerts(t);
      Vec3 face_n = (tb - ta).Cross(tc - ta).Normalized();
      Vec3 edge_dir = (b - a).Normalized();
      Vec3 constraint_n = edge_dir.Cross(face_n).Normalized();
      if (constraint_n.LengthSquared() < 0.5) {
        continue;  // Degenerate face or edge.
      }
      double edge_len = (b - a).Length();
      Quadric q = Quadric::FromPlane(constraint_n, -constraint_n.Dot(a),
                                     options_.boundary_weight * edge_len);
      quadrics_[va] += q;
      quadrics_[vb] += q;
    }
  }

  void SeedQueue() {
    std::unordered_set<uint64_t> seen;
    for (const Triangle& tri : tris_) {
      for (int e = 0; e < 3; ++e) {
        uint32_t a = tri.v[e];
        uint32_t b = tri.v[(e + 1) % 3];
        if (seen.insert(EdgeKey(a, b)).second) {
          PushCandidate(a, b);
        }
      }
    }
  }

  void PushCandidate(uint32_t a, uint32_t b) {
    Quadric q = quadrics_[a] + quadrics_[b];
    Vec3 target;
    if (auto opt = q.OptimalPoint(); opt.has_value()) {
      target = *opt;
    } else {
      // Fall back to the cheapest of the endpoints and the midpoint.
      Vec3 mid = (positions_[a] + positions_[b]) * 0.5;
      target = positions_[a];
      double best = q.Error(target);
      if (double e = q.Error(positions_[b]); e < best) {
        best = e;
        target = positions_[b];
      }
      if (double e = q.Error(mid); e < best) {
        target = mid;
      }
    }
    queue_.push(EdgeCandidate{q.Error(target), a, b, target,
                              versions_[a] + versions_[b]});
  }

  bool IsCurrent(const EdgeCandidate& cand) const {
    return vertex_alive_[cand.v0] && vertex_alive_[cand.v1] &&
           versions_[cand.v0] + versions_[cand.v1] == cand.version;
  }

  std::array<Vec3, 3> TriVerts(size_t t) const {
    const Triangle& tri = tris_[t];
    return {positions_[tri.v[0]], positions_[tri.v[1]], positions_[tri.v[2]]};
  }

  // True if moving v0 or v1 to `target` would flip any surviving triangle.
  bool WouldFlip(const EdgeCandidate& cand) const {
    for (uint32_t v : {cand.v0, cand.v1}) {
      for (uint32_t t : adjacency_[v]) {
        if (!tri_alive_[t]) {
          continue;
        }
        const Triangle& tri = tris_[t];
        bool has_v0 = tri.v[0] == cand.v0 || tri.v[1] == cand.v0 ||
                      tri.v[2] == cand.v0;
        bool has_v1 = tri.v[0] == cand.v1 || tri.v[1] == cand.v1 ||
                      tri.v[2] == cand.v1;
        if (has_v0 && has_v1) {
          continue;  // Triangle collapses away; not a flip.
        }
        Vec3 p[3];
        Vec3 q[3];
        for (int i = 0; i < 3; ++i) {
          p[i] = positions_[tri.v[i]];
          q[i] = (tri.v[i] == cand.v0 || tri.v[i] == cand.v1) ? cand.target
                                                              : p[i];
        }
        Vec3 n_before = (p[1] - p[0]).Cross(p[2] - p[0]);
        Vec3 n_after = (q[1] - q[0]).Cross(q[2] - q[0]);
        if (n_before.Dot(n_after) < 1e-12 * n_before.LengthSquared()) {
          return true;
        }
      }
    }
    return false;
  }

  void Collapse(const EdgeCandidate& cand) {
    const uint32_t keep = cand.v0;
    const uint32_t gone = cand.v1;
    positions_[keep] = cand.target;
    quadrics_[keep] += quadrics_[gone];
    vertex_alive_[gone] = false;
    ++versions_[keep];
    ++versions_[gone];

    // Retarget triangles of `gone`; kill those that contained both ends.
    for (uint32_t t : adjacency_[gone]) {
      if (!tri_alive_[t]) {
        continue;
      }
      Triangle& tri = tris_[t];
      bool shares_keep = tri.v[0] == keep || tri.v[1] == keep ||
                         tri.v[2] == keep;
      if (shares_keep) {
        tri_alive_[t] = false;
        --alive_triangles_;
        continue;
      }
      for (uint32_t& v : tri.v) {
        if (v == gone) {
          v = keep;
        }
      }
      adjacency_[keep].push_back(t);
    }
    adjacency_[gone].clear();
    PruneAdjacency(keep);

    // Refresh candidates around the surviving vertex.
    std::unordered_set<uint32_t> neighbors;
    for (uint32_t t : adjacency_[keep]) {
      if (!tri_alive_[t]) {
        continue;
      }
      for (uint32_t v : tris_[t].v) {
        if (v != keep && vertex_alive_[v]) {
          neighbors.insert(v);
        }
      }
    }
    for (uint32_t n : neighbors) {
      PushCandidate(keep, n);
    }
  }

  void PruneAdjacency(uint32_t v) {
    auto& list = adjacency_[v];
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](uint32_t t) { return !tri_alive_[t]; }),
               list.end());
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  TriangleMesh BuildResult() const {
    TriangleMesh out;
    std::vector<uint32_t> remap(positions_.size(),
                                std::numeric_limits<uint32_t>::max());
    for (size_t t = 0; t < tris_.size(); ++t) {
      if (!tri_alive_[t]) {
        continue;
      }
      const Triangle& tri = tris_[t];
      uint32_t mapped[3];
      for (int i = 0; i < 3; ++i) {
        uint32_t v = tri.v[i];
        if (remap[v] == std::numeric_limits<uint32_t>::max()) {
          remap[v] = out.AddVertex(positions_[v]);
        }
        mapped[i] = remap[v];
      }
      if (mapped[0] != mapped[1] && mapped[1] != mapped[2] &&
          mapped[0] != mapped[2]) {
        out.AddTriangle(mapped[0], mapped[1], mapped[2]);
      }
    }
    return out;
  }

  const SimplifyOptions& options_;
  std::vector<Vec3> positions_;
  std::vector<Triangle> tris_;
  std::vector<bool> tri_alive_;
  std::vector<Quadric> quadrics_;
  std::vector<uint64_t> versions_;
  std::vector<bool> vertex_alive_;
  std::vector<std::vector<uint32_t>> adjacency_;
  std::priority_queue<EdgeCandidate> queue_;
  std::unordered_map<uint64_t, int> rejections_;
  size_t alive_triangles_ = 0;
};

}  // namespace

TriangleMesh WeldVertices(const TriangleMesh& input, double epsilon) {
  // Quantize to a grid of `epsilon` cells; vertices mapping to the same
  // cell merge. This is deterministic and O(n) in expectation.
  const double inv_eps = 1.0 / std::max(epsilon, 1e-30);
  struct CellHash {
    size_t operator()(const std::array<int64_t, 3>& c) const {
      uint64_t h = 1469598103934665603ULL;
      for (int64_t v : c) {
        h = (h ^ static_cast<uint64_t>(v)) * 1099511628211ULL;
      }
      return static_cast<size_t>(h);
    }
  };
  std::unordered_map<std::array<int64_t, 3>, uint32_t, CellHash> cells;
  std::vector<uint32_t> remap(input.vertex_count());
  TriangleMesh out;
  for (size_t i = 0; i < input.vertex_count(); ++i) {
    const Vec3& p = input.vertices()[i];
    std::array<int64_t, 3> cell = {
        static_cast<int64_t>(std::llround(p.x * inv_eps)),
        static_cast<int64_t>(std::llround(p.y * inv_eps)),
        static_cast<int64_t>(std::llround(p.z * inv_eps))};
    auto [it, inserted] = cells.try_emplace(cell, 0);
    if (inserted) {
      it->second = out.AddVertex(p);
    }
    remap[i] = it->second;
  }
  for (const Triangle& tri : input.triangles()) {
    uint32_t a = remap[tri.v[0]];
    uint32_t b = remap[tri.v[1]];
    uint32_t c = remap[tri.v[2]];
    if (a != b && b != c && a != c) {
      out.AddTriangle(a, b, c);
    }
  }
  return out;
}

Result<TriangleMesh> Simplify(const TriangleMesh& input,
                              const SimplifyOptions& options) {
  Status valid = input.Validate();
  if (!valid.ok()) {
    return Status::InvalidArgument("simplify: invalid input mesh: " +
                                   std::string(valid.message()));
  }
  if (input.triangle_count() <= options.target_triangles) {
    return input;  // Nothing to do.
  }
  TriangleMesh working = options.weld_vertices
                             ? WeldVertices(input, options.weld_epsilon)
                             : input;
  Simplifier simplifier(working, options);
  TriangleMesh out = simplifier.Run();
  HDOV_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace hdov
