file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_storage.dir/bench_table2_storage.cc.o"
  "CMakeFiles/bench_table2_storage.dir/bench_table2_storage.cc.o.d"
  "bench_table2_storage"
  "bench_table2_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
