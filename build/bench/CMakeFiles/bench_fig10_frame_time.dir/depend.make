# Empty dependencies file for bench_fig10_frame_time.
# This may be replaced when dependencies are built.
