file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sessions.dir/bench_fig12_sessions.cc.o"
  "CMakeFiles/bench_fig12_sessions.dir/bench_fig12_sessions.cc.o.d"
  "bench_fig12_sessions"
  "bench_fig12_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
