# Empty dependencies file for bench_table3_frame_stats.
# This may be replaced when dependencies are built.
