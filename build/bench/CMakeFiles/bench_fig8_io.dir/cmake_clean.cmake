file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_io.dir/bench_fig8_io.cc.o"
  "CMakeFiles/bench_fig8_io.dir/bench_fig8_io.cc.o.d"
  "bench_fig8_io"
  "bench_fig8_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
