# Empty dependencies file for bench_fig8_io.
# This may be replaced when dependencies are built.
