# Empty compiler generated dependencies file for bench_fig11_fidelity.
# This may be replaced when dependencies are built.
