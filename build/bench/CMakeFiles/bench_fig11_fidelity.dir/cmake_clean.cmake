file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_fidelity.dir/bench_fig11_fidelity.cc.o"
  "CMakeFiles/bench_fig11_fidelity.dir/bench_fig11_fidelity.cc.o.d"
  "bench_fig11_fidelity"
  "bench_fig11_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
