
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_search_time.cc" "bench/CMakeFiles/bench_fig7_search_time.dir/bench_fig7_search_time.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_search_time.dir/bench_fig7_search_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hdov_walkthrough.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_visibility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_simplify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
