file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_search_time.dir/bench_fig7_search_time.cc.o"
  "CMakeFiles/bench_fig7_search_time.dir/bench_fig7_search_time.cc.o.d"
  "bench_fig7_search_time"
  "bench_fig7_search_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_search_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
