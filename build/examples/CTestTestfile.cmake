# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_storage_tuning "/root/repo/build/examples/storage_tuning")
set_tests_properties(example_storage_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mesh_pipeline "/root/repo/build/examples/mesh_pipeline")
set_tests_properties(example_mesh_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_visibility_probe "/root/repo/build/examples/visibility_probe")
set_tests_properties(example_visibility_probe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_persistence "/root/repo/build/examples/persistence")
set_tests_properties(example_persistence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_city_walkthrough "/root/repo/build/examples/city_walkthrough")
set_tests_properties(example_city_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
