file(REMOVE_RECURSE
  "CMakeFiles/mesh_pipeline.dir/mesh_pipeline.cpp.o"
  "CMakeFiles/mesh_pipeline.dir/mesh_pipeline.cpp.o.d"
  "mesh_pipeline"
  "mesh_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
