# Empty dependencies file for mesh_pipeline.
# This may be replaced when dependencies are built.
