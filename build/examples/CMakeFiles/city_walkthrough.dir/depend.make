# Empty dependencies file for city_walkthrough.
# This may be replaced when dependencies are built.
