file(REMOVE_RECURSE
  "CMakeFiles/city_walkthrough.dir/city_walkthrough.cpp.o"
  "CMakeFiles/city_walkthrough.dir/city_walkthrough.cpp.o.d"
  "city_walkthrough"
  "city_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
