file(REMOVE_RECURSE
  "CMakeFiles/visibility_probe.dir/visibility_probe.cpp.o"
  "CMakeFiles/visibility_probe.dir/visibility_probe.cpp.o.d"
  "visibility_probe"
  "visibility_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visibility_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
