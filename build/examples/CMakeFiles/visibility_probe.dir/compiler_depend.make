# Empty compiler generated dependencies file for visibility_probe.
# This may be replaced when dependencies are built.
