file(REMOVE_RECURSE
  "CMakeFiles/storage_tuning.dir/storage_tuning.cpp.o"
  "CMakeFiles/storage_tuning.dir/storage_tuning.cpp.o.d"
  "storage_tuning"
  "storage_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
