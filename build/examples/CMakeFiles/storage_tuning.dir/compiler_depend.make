# Empty compiler generated dependencies file for storage_tuning.
# This may be replaced when dependencies are built.
