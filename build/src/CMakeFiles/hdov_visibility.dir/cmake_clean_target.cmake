file(REMOVE_RECURSE
  "libhdov_visibility.a"
)
