file(REMOVE_RECURSE
  "CMakeFiles/hdov_visibility.dir/visibility/cubemap_buffer.cc.o"
  "CMakeFiles/hdov_visibility.dir/visibility/cubemap_buffer.cc.o.d"
  "CMakeFiles/hdov_visibility.dir/visibility/dov.cc.o"
  "CMakeFiles/hdov_visibility.dir/visibility/dov.cc.o.d"
  "CMakeFiles/hdov_visibility.dir/visibility/dov_sampling.cc.o"
  "CMakeFiles/hdov_visibility.dir/visibility/dov_sampling.cc.o.d"
  "CMakeFiles/hdov_visibility.dir/visibility/precompute.cc.o"
  "CMakeFiles/hdov_visibility.dir/visibility/precompute.cc.o.d"
  "libhdov_visibility.a"
  "libhdov_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdov_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
