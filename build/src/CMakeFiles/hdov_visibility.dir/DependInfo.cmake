
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/visibility/cubemap_buffer.cc" "src/CMakeFiles/hdov_visibility.dir/visibility/cubemap_buffer.cc.o" "gcc" "src/CMakeFiles/hdov_visibility.dir/visibility/cubemap_buffer.cc.o.d"
  "/root/repo/src/visibility/dov.cc" "src/CMakeFiles/hdov_visibility.dir/visibility/dov.cc.o" "gcc" "src/CMakeFiles/hdov_visibility.dir/visibility/dov.cc.o.d"
  "/root/repo/src/visibility/dov_sampling.cc" "src/CMakeFiles/hdov_visibility.dir/visibility/dov_sampling.cc.o" "gcc" "src/CMakeFiles/hdov_visibility.dir/visibility/dov_sampling.cc.o.d"
  "/root/repo/src/visibility/precompute.cc" "src/CMakeFiles/hdov_visibility.dir/visibility/precompute.cc.o" "gcc" "src/CMakeFiles/hdov_visibility.dir/visibility/precompute.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hdov_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_simplify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
