# Empty compiler generated dependencies file for hdov_visibility.
# This may be replaced when dependencies are built.
