file(REMOVE_RECURSE
  "CMakeFiles/hdov_geometry.dir/geometry/aabb.cc.o"
  "CMakeFiles/hdov_geometry.dir/geometry/aabb.cc.o.d"
  "CMakeFiles/hdov_geometry.dir/geometry/frustum.cc.o"
  "CMakeFiles/hdov_geometry.dir/geometry/frustum.cc.o.d"
  "CMakeFiles/hdov_geometry.dir/geometry/intersect.cc.o"
  "CMakeFiles/hdov_geometry.dir/geometry/intersect.cc.o.d"
  "libhdov_geometry.a"
  "libhdov_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdov_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
