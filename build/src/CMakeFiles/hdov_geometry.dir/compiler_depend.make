# Empty compiler generated dependencies file for hdov_geometry.
# This may be replaced when dependencies are built.
