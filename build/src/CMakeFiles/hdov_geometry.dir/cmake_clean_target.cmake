file(REMOVE_RECURSE
  "libhdov_geometry.a"
)
