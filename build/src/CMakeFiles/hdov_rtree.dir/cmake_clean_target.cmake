file(REMOVE_RECURSE
  "libhdov_rtree.a"
)
