# Empty compiler generated dependencies file for hdov_rtree.
# This may be replaced when dependencies are built.
