file(REMOVE_RECURSE
  "CMakeFiles/hdov_rtree.dir/rtree/linear_split.cc.o"
  "CMakeFiles/hdov_rtree.dir/rtree/linear_split.cc.o.d"
  "CMakeFiles/hdov_rtree.dir/rtree/quadratic_split.cc.o"
  "CMakeFiles/hdov_rtree.dir/rtree/quadratic_split.cc.o.d"
  "CMakeFiles/hdov_rtree.dir/rtree/rtree.cc.o"
  "CMakeFiles/hdov_rtree.dir/rtree/rtree.cc.o.d"
  "libhdov_rtree.a"
  "libhdov_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdov_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
