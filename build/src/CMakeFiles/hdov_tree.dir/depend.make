# Empty dependencies file for hdov_tree.
# This may be replaced when dependencies are built.
