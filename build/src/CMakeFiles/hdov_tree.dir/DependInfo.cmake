
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdov/bitmap_vertical_store.cc" "src/CMakeFiles/hdov_tree.dir/hdov/bitmap_vertical_store.cc.o" "gcc" "src/CMakeFiles/hdov_tree.dir/hdov/bitmap_vertical_store.cc.o.d"
  "/root/repo/src/hdov/builder.cc" "src/CMakeFiles/hdov_tree.dir/hdov/builder.cc.o" "gcc" "src/CMakeFiles/hdov_tree.dir/hdov/builder.cc.o.d"
  "/root/repo/src/hdov/hdov_tree.cc" "src/CMakeFiles/hdov_tree.dir/hdov/hdov_tree.cc.o" "gcc" "src/CMakeFiles/hdov_tree.dir/hdov/hdov_tree.cc.o.d"
  "/root/repo/src/hdov/horizontal_store.cc" "src/CMakeFiles/hdov_tree.dir/hdov/horizontal_store.cc.o" "gcc" "src/CMakeFiles/hdov_tree.dir/hdov/horizontal_store.cc.o.d"
  "/root/repo/src/hdov/indexed_vertical_store.cc" "src/CMakeFiles/hdov_tree.dir/hdov/indexed_vertical_store.cc.o" "gcc" "src/CMakeFiles/hdov_tree.dir/hdov/indexed_vertical_store.cc.o.d"
  "/root/repo/src/hdov/search.cc" "src/CMakeFiles/hdov_tree.dir/hdov/search.cc.o" "gcc" "src/CMakeFiles/hdov_tree.dir/hdov/search.cc.o.d"
  "/root/repo/src/hdov/vertical_store.cc" "src/CMakeFiles/hdov_tree.dir/hdov/vertical_store.cc.o" "gcc" "src/CMakeFiles/hdov_tree.dir/hdov/vertical_store.cc.o.d"
  "/root/repo/src/hdov/visibility_store.cc" "src/CMakeFiles/hdov_tree.dir/hdov/visibility_store.cc.o" "gcc" "src/CMakeFiles/hdov_tree.dir/hdov/visibility_store.cc.o.d"
  "/root/repo/src/hdov/vpage.cc" "src/CMakeFiles/hdov_tree.dir/hdov/vpage.cc.o" "gcc" "src/CMakeFiles/hdov_tree.dir/hdov/vpage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hdov_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_visibility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_simplify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
