file(REMOVE_RECURSE
  "CMakeFiles/hdov_tree.dir/hdov/bitmap_vertical_store.cc.o"
  "CMakeFiles/hdov_tree.dir/hdov/bitmap_vertical_store.cc.o.d"
  "CMakeFiles/hdov_tree.dir/hdov/builder.cc.o"
  "CMakeFiles/hdov_tree.dir/hdov/builder.cc.o.d"
  "CMakeFiles/hdov_tree.dir/hdov/hdov_tree.cc.o"
  "CMakeFiles/hdov_tree.dir/hdov/hdov_tree.cc.o.d"
  "CMakeFiles/hdov_tree.dir/hdov/horizontal_store.cc.o"
  "CMakeFiles/hdov_tree.dir/hdov/horizontal_store.cc.o.d"
  "CMakeFiles/hdov_tree.dir/hdov/indexed_vertical_store.cc.o"
  "CMakeFiles/hdov_tree.dir/hdov/indexed_vertical_store.cc.o.d"
  "CMakeFiles/hdov_tree.dir/hdov/search.cc.o"
  "CMakeFiles/hdov_tree.dir/hdov/search.cc.o.d"
  "CMakeFiles/hdov_tree.dir/hdov/vertical_store.cc.o"
  "CMakeFiles/hdov_tree.dir/hdov/vertical_store.cc.o.d"
  "CMakeFiles/hdov_tree.dir/hdov/visibility_store.cc.o"
  "CMakeFiles/hdov_tree.dir/hdov/visibility_store.cc.o.d"
  "CMakeFiles/hdov_tree.dir/hdov/vpage.cc.o"
  "CMakeFiles/hdov_tree.dir/hdov/vpage.cc.o.d"
  "libhdov_tree.a"
  "libhdov_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdov_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
