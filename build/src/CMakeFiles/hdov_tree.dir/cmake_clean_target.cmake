file(REMOVE_RECURSE
  "libhdov_tree.a"
)
