# Empty dependencies file for hdov_simplify.
# This may be replaced when dependencies are built.
