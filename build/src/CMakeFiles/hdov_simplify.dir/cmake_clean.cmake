file(REMOVE_RECURSE
  "CMakeFiles/hdov_simplify.dir/simplify/lod_chain.cc.o"
  "CMakeFiles/hdov_simplify.dir/simplify/lod_chain.cc.o.d"
  "CMakeFiles/hdov_simplify.dir/simplify/quadric.cc.o"
  "CMakeFiles/hdov_simplify.dir/simplify/quadric.cc.o.d"
  "CMakeFiles/hdov_simplify.dir/simplify/simplifier.cc.o"
  "CMakeFiles/hdov_simplify.dir/simplify/simplifier.cc.o.d"
  "libhdov_simplify.a"
  "libhdov_simplify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdov_simplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
