file(REMOVE_RECURSE
  "libhdov_simplify.a"
)
