file(REMOVE_RECURSE
  "libhdov_mesh.a"
)
