file(REMOVE_RECURSE
  "CMakeFiles/hdov_mesh.dir/mesh/obj_io.cc.o"
  "CMakeFiles/hdov_mesh.dir/mesh/obj_io.cc.o.d"
  "CMakeFiles/hdov_mesh.dir/mesh/primitives.cc.o"
  "CMakeFiles/hdov_mesh.dir/mesh/primitives.cc.o.d"
  "CMakeFiles/hdov_mesh.dir/mesh/triangle_mesh.cc.o"
  "CMakeFiles/hdov_mesh.dir/mesh/triangle_mesh.cc.o.d"
  "libhdov_mesh.a"
  "libhdov_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdov_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
