# Empty compiler generated dependencies file for hdov_mesh.
# This may be replaced when dependencies are built.
