# Empty compiler generated dependencies file for hdov_walkthrough.
# This may be replaced when dependencies are built.
