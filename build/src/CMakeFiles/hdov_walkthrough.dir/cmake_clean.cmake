file(REMOVE_RECURSE
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/fidelity.cc.o"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/fidelity.cc.o.d"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/frame_loop.cc.o"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/frame_loop.cc.o.d"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/lodr_system.cc.o"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/lodr_system.cc.o.d"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/naive_system.cc.o"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/naive_system.cc.o.d"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/render_model.cc.o"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/render_model.cc.o.d"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/review_system.cc.o"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/review_system.cc.o.d"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/visual_system.cc.o"
  "CMakeFiles/hdov_walkthrough.dir/walkthrough/visual_system.cc.o.d"
  "libhdov_walkthrough.a"
  "libhdov_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdov_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
