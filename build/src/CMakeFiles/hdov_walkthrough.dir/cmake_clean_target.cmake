file(REMOVE_RECURSE
  "libhdov_walkthrough.a"
)
