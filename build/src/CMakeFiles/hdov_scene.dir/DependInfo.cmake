
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scene/cell_grid.cc" "src/CMakeFiles/hdov_scene.dir/scene/cell_grid.cc.o" "gcc" "src/CMakeFiles/hdov_scene.dir/scene/cell_grid.cc.o.d"
  "/root/repo/src/scene/city_generator.cc" "src/CMakeFiles/hdov_scene.dir/scene/city_generator.cc.o" "gcc" "src/CMakeFiles/hdov_scene.dir/scene/city_generator.cc.o.d"
  "/root/repo/src/scene/object.cc" "src/CMakeFiles/hdov_scene.dir/scene/object.cc.o" "gcc" "src/CMakeFiles/hdov_scene.dir/scene/object.cc.o.d"
  "/root/repo/src/scene/session.cc" "src/CMakeFiles/hdov_scene.dir/scene/session.cc.o" "gcc" "src/CMakeFiles/hdov_scene.dir/scene/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hdov_simplify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hdov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
