# Empty compiler generated dependencies file for hdov_scene.
# This may be replaced when dependencies are built.
