file(REMOVE_RECURSE
  "CMakeFiles/hdov_scene.dir/scene/cell_grid.cc.o"
  "CMakeFiles/hdov_scene.dir/scene/cell_grid.cc.o.d"
  "CMakeFiles/hdov_scene.dir/scene/city_generator.cc.o"
  "CMakeFiles/hdov_scene.dir/scene/city_generator.cc.o.d"
  "CMakeFiles/hdov_scene.dir/scene/object.cc.o"
  "CMakeFiles/hdov_scene.dir/scene/object.cc.o.d"
  "CMakeFiles/hdov_scene.dir/scene/session.cc.o"
  "CMakeFiles/hdov_scene.dir/scene/session.cc.o.d"
  "libhdov_scene.a"
  "libhdov_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdov_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
