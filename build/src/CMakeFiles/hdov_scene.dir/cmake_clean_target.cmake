file(REMOVE_RECURSE
  "libhdov_scene.a"
)
