file(REMOVE_RECURSE
  "libhdov_storage.a"
)
