# Empty compiler generated dependencies file for hdov_storage.
# This may be replaced when dependencies are built.
