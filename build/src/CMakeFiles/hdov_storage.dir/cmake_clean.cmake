file(REMOVE_RECURSE
  "CMakeFiles/hdov_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/hdov_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/hdov_storage.dir/storage/model_store.cc.o"
  "CMakeFiles/hdov_storage.dir/storage/model_store.cc.o.d"
  "CMakeFiles/hdov_storage.dir/storage/page_device.cc.o"
  "CMakeFiles/hdov_storage.dir/storage/page_device.cc.o.d"
  "CMakeFiles/hdov_storage.dir/storage/paged_file.cc.o"
  "CMakeFiles/hdov_storage.dir/storage/paged_file.cc.o.d"
  "libhdov_storage.a"
  "libhdov_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdov_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
