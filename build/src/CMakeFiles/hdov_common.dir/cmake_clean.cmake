file(REMOVE_RECURSE
  "CMakeFiles/hdov_common.dir/common/coding.cc.o"
  "CMakeFiles/hdov_common.dir/common/coding.cc.o.d"
  "CMakeFiles/hdov_common.dir/common/status.cc.o"
  "CMakeFiles/hdov_common.dir/common/status.cc.o.d"
  "libhdov_common.a"
  "libhdov_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdov_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
