file(REMOVE_RECURSE
  "libhdov_common.a"
)
