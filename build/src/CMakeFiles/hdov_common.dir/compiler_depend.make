# Empty compiler generated dependencies file for hdov_common.
# This may be replaced when dependencies are built.
