# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/simplify_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/scene_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/visibility_test[1]_include.cmake")
include("/root/repo/build/tests/hdov_tree_test[1]_include.cmake")
include("/root/repo/build/tests/walkthrough_test[1]_include.cmake")
