# Empty compiler generated dependencies file for walkthrough_test.
# This may be replaced when dependencies are built.
