file(REMOVE_RECURSE
  "CMakeFiles/walkthrough_test.dir/walkthrough_test.cc.o"
  "CMakeFiles/walkthrough_test.dir/walkthrough_test.cc.o.d"
  "walkthrough_test"
  "walkthrough_test.pdb"
  "walkthrough_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walkthrough_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
