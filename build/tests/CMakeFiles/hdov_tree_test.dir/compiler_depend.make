# Empty compiler generated dependencies file for hdov_tree_test.
# This may be replaced when dependencies are built.
