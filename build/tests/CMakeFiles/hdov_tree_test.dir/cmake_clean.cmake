file(REMOVE_RECURSE
  "CMakeFiles/hdov_tree_test.dir/hdov_tree_test.cc.o"
  "CMakeFiles/hdov_tree_test.dir/hdov_tree_test.cc.o.d"
  "hdov_tree_test"
  "hdov_tree_test.pdb"
  "hdov_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdov_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
