file(REMOVE_RECURSE
  "CMakeFiles/visibility_test.dir/visibility_test.cc.o"
  "CMakeFiles/visibility_test.dir/visibility_test.cc.o.d"
  "visibility_test"
  "visibility_test.pdb"
  "visibility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
