# Empty compiler generated dependencies file for visibility_test.
# This may be replaced when dependencies are built.
