// City walkthrough: plays a recorded walking session through a synthetic
// city on both walkthrough systems — VISUAL (HDoV-tree, this paper) and
// REVIEW (R-tree spatial window queries, the VLDB'01 baseline) — and
// prints per-system frame statistics plus a live excerpt of the walk.
//
// Build & run:  ./build/examples/city_walkthrough

#include <cstdio>

#include "scene/city_generator.h"
#include "scene/session.h"
#include "visibility/precompute.h"
#include "walkthrough/frame_loop.h"
#include "walkthrough/review_system.h"
#include "walkthrough/visual_system.h"

using namespace hdov;  // Example code; library code never does this.

int main() {
  CityOptions city_options;
  city_options.blocks_x = 10;
  city_options.blocks_y = 10;
  Result<Scene> scene = GenerateCity(city_options);
  if (!scene.ok()) {
    std::fprintf(stderr, "%s\n", scene.status().ToString().c_str());
    return 1;
  }

  CellGridOptions grid_options;
  grid_options.cells_x = 10;
  grid_options.cells_y = 10;
  Result<CellGrid> grid = CellGrid::Build(scene->bounds(), grid_options);
  PrecomputeOptions precompute_options;
  precompute_options.dov.cubemap.face_resolution = 32;
  Result<VisibilityTable> table =
      PrecomputeVisibility(*scene, *grid, precompute_options);
  if (!grid.ok() || !table.ok()) {
    std::fprintf(stderr, "precompute failed\n");
    return 1;
  }
  std::printf("city: %s\n\n", scene->Summary().c_str());

  VisualOptions visual_options;
  visual_options.eta = 0.001;
  visual_options.build.rtree.max_entries = 8;
  visual_options.build.rtree.min_entries = 3;
  visual_options.prefetch_models_per_frame = 2;
  Result<std::unique_ptr<VisualSystem>> visual =
      VisualSystem::Create(&*scene, &*grid, &*table, visual_options);

  ReviewOptions review_options;
  review_options.query_box_size = 400.0;
  review_options.cache_distance = 600.0;
  Result<std::unique_ptr<ReviewSystem>> review =
      ReviewSystem::Create(&*scene, review_options);
  if (!visual.ok() || !review.ok()) {
    std::fprintf(stderr, "system setup failed\n");
    return 1;
  }

  SessionOptions session_options;
  session_options.num_frames = 300;
  Session session = RecordSession(MotionPattern::kNormalWalk,
                                  scene->bounds(), session_options);

  // Narrated excerpt: walk the first 10 frames on VISUAL.
  std::printf("-- first frames on VISUAL (eta = %.3f) --\n",
              visual_options.eta);
  for (size_t i = 0; i < 10; ++i) {
    FrameResult frame;
    if (Status s = (*visual)->RenderFrame(session.frames[i], &frame);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf(
        "frame %2zu @ (%6.1f, %6.1f): %5.1f ms | %3zu fetched | %5llu tris |"
        " %4.1f MB resident\n",
        i, session.frames[i].position.x, session.frames[i].position.y,
        frame.frame_time_ms, frame.models_fetched,
        static_cast<unsigned long long>(frame.rendered_triangles),
        static_cast<double>(frame.resident_bytes) / (1024 * 1024));
  }
  (*visual)->ResetRuntime();
  (*visual)->ResetIoStats();

  // Full-session comparison.
  std::printf("\n-- full %zu-frame session --\n", session.frames.size());
  for (WalkthroughSystem* system :
       {static_cast<WalkthroughSystem*>(visual->get()),
        static_cast<WalkthroughSystem*>(review->get())}) {
    Result<SessionSummary> summary = PlaySession(system, session);
    if (!summary.ok()) {
      std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%-7s avg frame %6.2f ms | variance %7.2f | avg query %6.2f ms |"
        " avg I/O %6.2f pages | peak mem %5.1f MB\n",
        system->name().c_str(), summary->avg_frame_time_ms,
        summary->var_frame_time, summary->avg_query_time_ms,
        summary->avg_io_pages,
        static_cast<double>(summary->max_resident_bytes) / (1024 * 1024));
  }
  std::printf(
      "\nVISUAL walks the same path with lower, steadier frame times and a\n"
      "fraction of the memory: it fetches only what is actually visible,\n"
      "at the detail its visibility warrants.\n");
  return 0;
}
