// Quickstart: the smallest end-to-end use of the library.
//
//  1. Generate a synthetic city scene.
//  2. Partition the viewpoint space into viewing cells and precompute the
//     degree-of-visibility (DoV) of every object per cell.
//  3. Build the HDoV-tree (with internal LoDs) over a simulated disk.
//  4. Run visibility queries at different DoV thresholds (eta) and look at
//     what the tunable search retrieves.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "hdov/builder.h"
#include "hdov/search.h"
#include "scene/city_generator.h"
#include "storage/model_store.h"
#include "visibility/precompute.h"

using namespace hdov;  // Example code; library code never does this.

int main() {
  // 1. A small city: 5x5 blocks of buildings with a couple of parks.
  CityOptions city_options;
  city_options.blocks_x = 5;
  city_options.blocks_y = 5;
  Result<Scene> scene = GenerateCity(city_options);
  if (!scene.ok()) {
    std::fprintf(stderr, "scene: %s\n", scene.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", scene->Summary().c_str());

  // 2. Viewing cells + per-cell DoV (the offline visibility pass).
  CellGridOptions grid_options;
  grid_options.cells_x = 6;
  grid_options.cells_y = 6;
  Result<CellGrid> grid = CellGrid::Build(scene->bounds(), grid_options);
  PrecomputeOptions precompute_options;
  precompute_options.dov.cubemap.face_resolution = 32;
  Result<VisibilityTable> table =
      PrecomputeVisibility(*scene, *grid, precompute_options);
  if (!grid.ok() || !table.ok()) {
    std::fprintf(stderr, "visibility precompute failed\n");
    return 1;
  }
  std::printf("%u viewing cells, avg %.1f visible objects per cell\n",
              grid->num_cells(), table->AverageVisibleObjects());

  // 3. HDoV-tree over simulated disk devices.
  SimClock clock;
  PageDevice tree_device(DiskModel(), &clock);
  PageDevice store_device(DiskModel(), &clock);
  PageDevice model_device(DiskModel(), &clock);
  ModelStore models(&model_device);

  HdovBuildOptions build_options;
  build_options.rtree.max_entries = 8;
  build_options.rtree.min_entries = 3;
  Result<HdovTree> tree = HdovBuilder::Build(*scene, &models, build_options);
  if (!tree.ok()) {
    std::fprintf(stderr, "build: %s\n", tree.status().ToString().c_str());
    return 1;
  }
  if (Status s = tree->Pack(&tree_device); !s.ok()) {
    std::fprintf(stderr, "pack: %s\n", s.ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<VisibilityStore>> store = BuildStore(
      StorageScheme::kIndexedVertical, *tree, *table, &store_device);
  if (!store.ok()) {
    std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("HDoV-tree: %zu nodes, height %d, V-pages %.1f KB on disk\n\n",
              tree->num_nodes(), tree->height(),
              static_cast<double>((*store)->SizeBytes()) / 1024.0);

  // 4. Tunable visibility queries from the city center.
  HdovSearcher searcher(&*tree, &*scene, &models, &tree_device);
  const Vec3 viewpoint = scene->bounds().Center();
  const CellId cell = grid->ClampedCellForPoint(viewpoint);

  for (double eta : {0.0, 0.002, 0.02}) {
    SearchOptions search_options;
    search_options.eta = eta;
    std::vector<RetrievedLod> result;
    SearchStats stats;
    if (Status s = searcher.Search(store->get(), cell, search_options,
                                   &result, &stats);
        !s.ok()) {
      std::fprintf(stderr, "search: %s\n", s.ToString().c_str());
      return 1;
    }
    size_t object_lods = 0;
    size_t internal_lods = 0;
    uint64_t triangles = 0;
    for (const RetrievedLod& lod : result) {
      (lod.kind == RetrievedLod::Kind::kObject ? object_lods
                                               : internal_lods)++;
      triangles += lod.triangle_count;
    }
    std::printf(
        "eta = %-6.3f -> %2zu object LoDs + %zu internal LoDs, %6llu "
        "triangles (%llu nodes visited, %llu branches pruned)\n",
        eta, object_lods, internal_lods,
        static_cast<unsigned long long>(triangles),
        static_cast<unsigned long long>(stats.nodes_visited),
        static_cast<unsigned long long>(stats.hidden_entries_pruned));
  }
  std::printf(
      "\nLarger eta trades detail for speed: distant, barely visible\n"
      "object groups collapse into single coarse internal LoDs.\n");
  return 0;
}
