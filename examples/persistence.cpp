// Persistence: build an HDoV-tree once, save the packed device image to a
// real file, then reopen it in a fresh process state and query it —
// the offline-precompute / online-walkthrough split the paper's system
// implies (precomputation takes ~1 s per cell; you do it once).
//
// Build & run:  ./build/examples/persistence [db_path]

#include <cstdio>
#include <string>

#include "hdov/builder.h"
#include "hdov/search.h"
#include "scene/city_generator.h"
#include "visibility/precompute.h"

using namespace hdov;  // Example code; library code never does this.

int main(int argc, char** argv) {
  const std::string path =
      (argc > 1 ? argv[1] : std::string("/tmp")) + "/hdov_city.db";

  CityOptions city_options;
  city_options.blocks_x = 6;
  city_options.blocks_y = 6;
  Result<Scene> scene = GenerateCity(city_options);
  CellGridOptions grid_options;
  grid_options.cells_x = 6;
  grid_options.cells_y = 6;
  if (!scene.ok()) {
    return 1;
  }
  Result<CellGrid> grid = CellGrid::Build(scene->bounds(), grid_options);
  PrecomputeOptions precompute_options;
  precompute_options.dov.cubemap.face_resolution = 32;
  Result<VisibilityTable> table =
      PrecomputeVisibility(*scene, *grid, precompute_options);
  if (!grid.ok() || !table.ok()) {
    return 1;
  }

  Extent manifest;
  {
    // --- offline: build, pack, save ---
    PageDevice device;
    ModelStore models(&device);
    HdovBuildOptions build_options;
    build_options.rtree.max_entries = 8;
    build_options.rtree.min_entries = 3;
    build_options.bulk_load = true;
    Result<HdovTree> tree = HdovBuilder::Build(*scene, &models,
                                               build_options);
    if (!tree.ok()) {
      std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
      return 1;
    }
    if (Status s = tree->Pack(&device); !s.ok()) {
      return 1;
    }
    PagedFile file(&device);
    Result<Extent> m = tree->WriteManifest(&file);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    manifest = *m;
    if (Status s = device.SaveToFile(path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("offline build: %zu nodes over %s\nsaved image to %s\n\n",
                tree->num_nodes(), scene->Summary().c_str(), path.c_str());
  }

  // --- online: reopen and query ---
  PageDevice device;
  if (Status s = device.LoadFromFile(path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  PagedFile file(&device);
  Result<HdovTree> tree = HdovTree::LoadFrom(&device, &file, manifest);
  if (!tree.ok()) {
    std::fprintf(stderr, "reload: %s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("reloaded %zu nodes (invariants verified on load)\n",
              tree->num_nodes());

  // Rebuild the runtime pieces over the restored tree and query it.
  ModelStore models(&device);  // Model extents are re-registered in demos;
  for (const Object& obj : scene->objects()) {  // a production DB would
    for (size_t l = 0; l < obj.lods.num_levels(); ++l) {  // persist these
      models.Register(obj.lods.level(l).byte_size);       // extents too.
    }
  }
  PageDevice store_device;
  Result<std::unique_ptr<VisibilityStore>> store = BuildStore(
      StorageScheme::kIndexedVertical, *tree, *table, &store_device);
  if (!store.ok()) {
    return 1;
  }
  HdovSearcher searcher(&*tree, &*scene, &models, &device);
  std::vector<RetrievedLod> result;
  SearchOptions search_options;
  search_options.eta = 0.001;
  Vec3 eye = scene->bounds().Center();
  if (Status s = searcher.Search(store->get(),
                                 grid->ClampedCellForPoint(eye),
                                 search_options, &result);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("query from the restored tree: %zu representations\n",
              result.size());
  return 0;
}
