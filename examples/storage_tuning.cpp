// Storage tuning: how to choose a V-page storage scheme and a DoV
// threshold for a deployment. Builds the same HDoV-tree under all three
// storage schemes, then sweeps eta, reporting disk footprint, per-query
// simulated latency and retrieved detail — the three axes an integrator
// actually trades off.
//
// Build & run:  ./build/examples/storage_tuning

#include <cstdio>
#include <memory>

#include "hdov/builder.h"
#include "scene/city_generator.h"
#include "visibility/precompute.h"
#include "walkthrough/visual_system.h"

using namespace hdov;  // Example code; library code never does this.

int main() {
  CityOptions city_options;
  city_options.blocks_x = 8;
  city_options.blocks_y = 8;
  Result<Scene> scene = GenerateCity(city_options);
  CellGridOptions grid_options;
  grid_options.cells_x = 12;
  grid_options.cells_y = 12;
  if (!scene.ok()) {
    return 1;
  }
  Result<CellGrid> grid = CellGrid::Build(scene->bounds(), grid_options);
  PrecomputeOptions precompute_options;
  precompute_options.dov.cubemap.face_resolution = 32;
  Result<VisibilityTable> table =
      PrecomputeVisibility(*scene, *grid, precompute_options);
  if (!grid.ok() || !table.ok()) {
    return 1;
  }
  std::printf("%s, %u cells\n\n", scene->Summary().c_str(),
              grid->num_cells());

  // Axis 1: storage scheme -> disk footprint and query latency.
  std::printf("--- storage schemes (eta = 0.001) ---\n");
  std::printf("%-18s %12s %16s\n", "scheme", "V-data (KB)", "avg query (ms)");
  std::vector<Vec3> probes;
  for (CellId c = 0; c < grid->num_cells(); ++c) {
    probes.push_back(grid->CellCenter(c));
  }
  for (StorageScheme scheme :
       {StorageScheme::kHorizontal, StorageScheme::kVertical,
        StorageScheme::kIndexedVertical}) {
    VisualOptions options;
    options.scheme = scheme;
    options.eta = 0.001;
    options.build.rtree.max_entries = 8;
    options.build.rtree.min_entries = 3;
    Result<std::unique_ptr<VisualSystem>> system =
        VisualSystem::Create(&*scene, &*grid, &*table, options);
    if (!system.ok()) {
      std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
      return 1;
    }
    (*system)->ResetIoStats();
    std::vector<RetrievedLod> result;
    for (const Vec3& p : probes) {
      (void)(*system)->Query(p, /*fetch_models=*/true, &result, nullptr);
    }
    std::printf("%-18s %12.1f %16.3f\n", StorageSchemeName(scheme).c_str(),
                static_cast<double>((*system)->store()->SizeBytes()) / 1024.0,
                (*system)->clock().NowMillis() / probes.size());
  }

  // Axis 2: eta -> latency vs retrieved detail (indexed-vertical).
  std::printf("\n--- eta sweep (indexed-vertical) ---\n");
  std::printf("%8s %16s %14s %16s\n", "eta", "avg query (ms)", "tris/query",
              "internal LoDs");
  VisualOptions options;
  options.build.rtree.max_entries = 8;
  options.build.rtree.min_entries = 3;
  Result<std::unique_ptr<VisualSystem>> system =
      VisualSystem::Create(&*scene, &*grid, &*table, options);
  if (!system.ok()) {
    return 1;
  }
  for (double eta : {0.0, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.016}) {
    (*system)->set_eta(eta);
    (*system)->ResetIoStats();
    uint64_t triangles = 0;
    uint64_t internal = 0;
    std::vector<RetrievedLod> result;
    for (const Vec3& p : probes) {
      (void)(*system)->Query(p, /*fetch_models=*/true, &result, nullptr);
      for (const RetrievedLod& lod : result) {
        triangles += lod.triangle_count;
        internal += lod.kind == RetrievedLod::Kind::kInternal ? 1 : 0;
      }
    }
    std::printf("%8.4f %16.3f %14.0f %16.1f\n", eta,
                (*system)->clock().NowMillis() / probes.size(),
                static_cast<double>(triangles) / probes.size(),
                static_cast<double>(internal) / probes.size());
  }
  std::printf(
      "\nRule of thumb: indexed-vertical for storage, then raise eta until\n"
      "the triangle budget (and thus fidelity) hits your floor.\n");
  return 0;
}
