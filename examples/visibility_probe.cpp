// Visibility probe: an interactive-style diagnostic that computes the
// degree of visibility (DoV) of every object from a chosen viewpoint and
// draws an overhead ASCII map of the city — '@' marks the viewer, letters
// grade each building by how visible it is ('A' = most visible, 'z' ~
// barely visible, '.' = completely hidden). Demonstrates the cube-map
// item-buffer API directly.
//
// Build & run:  ./build/examples/visibility_probe [x y]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "scene/city_generator.h"
#include "visibility/dov.h"

using namespace hdov;  // Example code; library code never does this.

int main(int argc, char** argv) {
  CityOptions city_options;
  city_options.blocks_x = 8;
  city_options.blocks_y = 8;
  Result<Scene> scene = GenerateCity(city_options);
  if (!scene.ok()) {
    std::fprintf(stderr, "%s\n", scene.status().ToString().c_str());
    return 1;
  }

  Vec3 eye = scene->bounds().Center();
  eye.z = 1.7;
  if (argc >= 3) {
    eye.x = std::atof(argv[1]);
    eye.y = std::atof(argv[2]);
  }

  DovOptions dov_options;
  dov_options.cubemap.face_resolution = 64;
  DovComputer computer(&*scene, dov_options);
  const std::vector<float>& dov = computer.ComputePointDov(eye);

  // Rank objects by DoV to assign display grades.
  std::vector<ObjectId> visible;
  for (ObjectId id = 0; id < scene->size(); ++id) {
    if (dov[id] > 0.0f) {
      visible.push_back(id);
    }
  }
  std::sort(visible.begin(), visible.end(),
            [&](ObjectId a, ObjectId b) { return dov[a] > dov[b]; });
  std::vector<char> grade(scene->size(), '.');
  const char* kGrades = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
  for (size_t rank = 0; rank < visible.size(); ++rank) {
    grade[visible[rank]] = kGrades[std::min<size_t>(rank, 51)];
  }

  // Overhead raster: for each map cell, show the grade of the object
  // whose footprint covers it (preferring the most visible one).
  const int kW = 96;
  const int kH = 40;
  const Aabb& bounds = scene->bounds();
  std::vector<std::string> map(kH, std::string(kW, ' '));
  for (ObjectId id = 0; id < scene->size(); ++id) {
    const Aabb& mbr = scene->object(id).mbr;
    auto to_col = [&](double x) {
      return static_cast<int>((x - bounds.min.x) /
                              (bounds.max.x - bounds.min.x) * (kW - 1));
    };
    auto to_row = [&](double y) {
      return static_cast<int>((y - bounds.min.y) /
                              (bounds.max.y - bounds.min.y) * (kH - 1));
    };
    for (int r = std::max(0, to_row(mbr.min.y));
         r <= std::min(kH - 1, to_row(mbr.max.y)); ++r) {
      for (int c = std::max(0, to_col(mbr.min.x));
           c <= std::min(kW - 1, to_col(mbr.max.x)); ++c) {
        char& cell = map[r][c];
        // Prefer better (earlier-alphabet) grades; '.' loses to letters.
        if (cell == ' ' || cell == '.' ||
            (grade[id] != '.' && grade[id] < cell)) {
          cell = grade[id];
        }
      }
    }
  }
  {
    int r = std::clamp(static_cast<int>((eye.y - bounds.min.y) /
                                        (bounds.max.y - bounds.min.y) *
                                        (kH - 1)),
                       0, kH - 1);
    int c = std::clamp(static_cast<int>((eye.x - bounds.min.x) /
                                        (bounds.max.x - bounds.min.x) *
                                        (kW - 1)),
                       0, kW - 1);
    map[r][c] = '@';
  }

  std::printf("viewpoint (%.1f, %.1f, %.1f): %zu of %zu objects visible\n\n",
              eye.x, eye.y, eye.z, visible.size(), scene->size());
  for (int r = kH - 1; r >= 0; --r) {  // North up.
    std::printf("%s\n", map[r].c_str());
  }
  std::printf("\n'@' viewer | 'A' most visible ... 'z' barely visible | '.'"
              " hidden\n\ntop 10 by DoV:\n");
  for (size_t i = 0; i < std::min<size_t>(10, visible.size()); ++i) {
    const Object& obj = scene->object(visible[i]);
    std::printf("  %c  object %4u (%s) DoV = %.5f, %u tris finest\n",
                kGrades[i], visible[i],
                obj.kind == ObjectKind::kBuilding ? "building" : "bunny",
                dov[visible[i]], obj.lods.finest().triangle_count);
  }
  return 0;
}
