// Mesh pipeline: the full-geometry path of the library — procedural
// models, quadric-error-metric simplification (the qslim algorithm), LoD
// chains, and OBJ export for inspection in any external viewer.
//
// Build & run:  ./build/examples/mesh_pipeline [output_dir]
// Writes building_lod{0..}.obj and bunny_lod{0..}.obj into output_dir
// (default /tmp).

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "mesh/obj_io.h"
#include "mesh/primitives.h"
#include "simplify/lod_chain.h"

using namespace hdov;  // Example code; library code never does this.

namespace {

int ExportChain(const char* name, const TriangleMesh& mesh,
                const std::string& out_dir) {
  LodChainOptions options;
  options.ratios = {1.0, 0.4, 0.15, 0.05};
  Result<LodChain> chain = LodChain::Build(mesh, options);
  if (!chain.ok()) {
    std::fprintf(stderr, "%s: %s\n", name,
                 chain.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu LoD levels\n", name, chain->num_levels());
  for (size_t level = 0; level < chain->num_levels(); ++level) {
    const LodLevel& lod = chain->level(level);
    std::string path = out_dir + "/" + name + "_lod" +
                       std::to_string(level) + ".obj";
    if (Status s = WriteObjFile(lod.mesh, path); !s.ok()) {
      std::fprintf(stderr, "  %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("  level %zu: %6u triangles, %7.1f KB logical -> %s\n",
                level, lod.triangle_count,
                static_cast<double>(lod.byte_size) / 1024.0, path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  // A detailed office tower...
  BuildingOptions building_options;
  building_options.width = 24;
  building_options.depth = 18;
  building_options.height = 90;
  building_options.facade_columns = 10;
  building_options.facade_rows = 24;
  building_options.tiers = 3;
  TriangleMesh building = MakeBuilding(building_options);

  // ... and a park "bunny" blob (the paper decorates parks with bunnies).
  Rng rng(2003);
  TriangleMesh bunny = MakeBunnyBlob(/*subdivisions=*/4, /*radius=*/4.0,
                                     &rng);

  if (int rc = ExportChain("building", building, out_dir); rc != 0) {
    return rc;
  }
  if (int rc = ExportChain("bunny", bunny, out_dir); rc != 0) {
    return rc;
  }
  std::printf(
      "\nOpen the .obj files in any mesh viewer to see the quadric\n"
      "error metric simplifier walk the models down to their coarse LoDs.\n");
  return 0;
}
