// Table 2 reproduction: storage space required by the three V-page storage
// schemes (horizontal, vertical, indexed-vertical) for the same HDoV-tree
// and visibility data. Expected shape: horizontal costs a large multiple
// of the two vertical schemes; indexed-vertical is the most compact.

#include <cstdio>

#include "bench_util.h"
#include "hdov/builder.h"
#include "storage/page_device.h"

namespace hdov::bench {
namespace {

int Run(const BenchArgs& args) {
  TelemetryScope telemetry(args, "bench_table2_storage");
  telemetry.Header("Table 2: storage space of the V-page storage schemes",
                   "Table 2");
  TestbedOptions opt = DefaultTestbedOptions();
  // Storage ratios are driven by the fraction of nodes hidden per cell
  // (N_vnode / N_node), which shrinks as the city and the viewing grid
  // grow — so this experiment runs on a larger testbed than the query
  // benches. The paper's ~15-20x gap corresponds to its 1.6 GB dataset
  // with 4000+ cells.
  opt.blocks = LargeScale() ? 28 : 20;
  opt.cells = LargeScale() ? 48 : 32;
  Testbed bed = BuildTestbed(opt, telemetry.report());
  PrintTestbedSummary(bed);

  PageDevice model_device;
  ModelStore models(&model_device);
  HdovBuildOptions bopt;
  Result<HdovTree> tree = HdovBuilder::Build(bed.scene, &models, bopt);
  if (!tree.ok()) {
    std::fprintf(stderr, "build: %s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("HDoV-tree: %zu nodes, fanout %zu, height %d, s = %.3f\n\n",
              tree->num_nodes(), tree->fanout(), tree->height(),
              tree->s_ratio());

  SeriesTable table(telemetry.report(), "table2.storage", "Storage Scheme",
                    18,
                    {SeriesTable::Col{"Size (MB)", 14, 2},
                     SeriesTable::Col{"vs indexed", 10, 1}});
  double sizes[4] = {0, 0, 0, 0};
  const StorageScheme schemes[4] = {StorageScheme::kHorizontal,
                                    StorageScheme::kVertical,
                                    StorageScheme::kIndexedVertical,
                                    StorageScheme::kBitmapVertical};
  std::unique_ptr<PageDevice> devices[4];
  for (int i = 0; i < 4; ++i) {
    devices[i] = std::make_unique<PageDevice>();
    auto store = BuildStore(schemes[i], *tree, bed.table, devices[i].get());
    if (!store.ok()) {
      std::fprintf(stderr, "store: %s\n", store.status().ToString().c_str());
      return 1;
    }
    sizes[i] = MB((*store)->SizeBytes());
    if (telemetry.on()) {
      telemetry.get()
          ->metrics()
          .GetGauge("table2.store." + StorageSchemeName(schemes[i]) +
                    ".size_bytes")
          ->Set(static_cast<double>((*store)->SizeBytes()));
    }
  }
  for (int i = 0; i < 4; ++i) {
    table.Row(StorageSchemeName(schemes[i]),
              {sizes[i], sizes[i] / sizes[2]});
  }
  std::printf("\nraw model data (all object + internal LoDs): %.1f MB\n",
              MB(models.total_bytes()));
  std::printf("paper shape check: horizontal/vertical = %.1fx (paper: ~15x"
              " at 4000+ cells), vertical >= indexed-vertical: %s\n",
              sizes[0] / sizes[1], sizes[1] >= sizes[2] ? "yes" : "NO");
  return telemetry.Write() ? 0 : 1;
}

}  // namespace
}  // namespace hdov::bench

int main(int argc, char** argv) {
  return hdov::bench::Run(hdov::bench::ParseBenchArgs(argc, argv));
}
