// Figure 8 reproduction:
//  (a) total disk I/Os per query (tree nodes + V-pages + model data) as
//      eta varies — HDoV always at or below naive, falling with eta;
//  (b) light-weight I/Os (tree nodes + V-pages only) — naive is flat and
//      *cheaper* than HDoV at very small eta (HDoV pays for internal
//      nodes/V-pages), with the curves crossing as eta grows.

#include <cstdio>

#include "bench_util.h"
#include "walkthrough/naive_system.h"
#include "walkthrough/visual_system.h"

namespace hdov::bench {
namespace {

int Run(const BenchArgs& args) {
  TelemetryScope telemetry(args, "bench_fig8_io");
  telemetry.Header("Figure 8: disk I/O vs DoV threshold (eta)",
                   "Figures 8(a,b)");
  Testbed bed = BuildTestbed(DefaultTestbedOptions(), telemetry.report());
  PrintTestbedSummary(bed);

  const size_t kQueries = LargeScale() ? 10000 : 2000;
  std::vector<Vec3> viewpoints =
      RandomViewpoints(bed.scene.bounds(), kQueries, 123);

  VisualOptions vopt = DefaultVisualOptions();
  vopt.scheme = StorageScheme::kIndexedVertical;
  Result<std::unique_ptr<VisualSystem>> visual =
      MakeVisualSystem(bed, vopt);
  Result<std::unique_ptr<NaiveSystem>> naive =
      NaiveSystem::Create(&bed.scene, &bed.grid, &bed.table, NaiveOptions());
  if (!visual.ok() || !naive.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  (*naive)->set_delta_enabled(false);
  telemetry.Attach(visual->get(), "visual.indexed-vertical");
  telemetry.Attach(naive->get(), "naive");

  // Naive baseline: light I/O = cell list pages, total adds model pages.
  double naive_light = 0.0;
  double naive_total = 0.0;
  {
    (*naive)->ResetIoStats();
    std::vector<RetrievedLod> result;
    for (const Vec3& p : viewpoints) {
      (void)(*naive)->Query(p, /*fetch_models=*/true, &result);
    }
    naive_light = static_cast<double>((*naive)->list_device().stats()
                                          .page_reads) /
                  viewpoints.size();
    naive_total = static_cast<double>((*naive)->TotalIoStats().page_reads) /
                  viewpoints.size();
  }

  const double etas[] = {0.0,   0.0005, 0.001, 0.002,
                         0.003, 0.004,  0.006, 0.008};
  std::printf("page I/Os per query, %zu queries (indexed-vertical scheme)\n\n",
              viewpoints.size());
  SeriesTable table(telemetry.report(), "fig8.io", "eta", 8,
                    {SeriesTable::Col{"total(hdov)", 12, 2},
                     SeriesTable::Col{"total(naive)", 12, 2},
                     SeriesTable::Col{"light(hdov)", 12, 2},
                     SeriesTable::Col{"light(naive)", 12, 2}});
  char label[32];
  for (double eta : etas) {
    WallTimer sweep;
    (*visual)->set_eta(eta);
    (*visual)->ResetIoStats();
    std::vector<RetrievedLod> result;
    for (const Vec3& p : viewpoints) {
      if (Status st =
              (*visual)->Query(p, /*fetch_models=*/true, &result, nullptr);
          !st.ok()) {
        std::fprintf(stderr, "query: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    const double light =
        static_cast<double>((*visual)->tree_device().stats().page_reads +
                            (*visual)->store_device().stats().page_reads) /
        viewpoints.size();
    const double total =
        static_cast<double>((*visual)->TotalIoStats().page_reads) /
        viewpoints.size();
    telemetry.report()->RecordTiming("sweep.eta", sweep.ElapsedMs());
    std::snprintf(label, sizeof(label), "%.4f", eta);
    table.Row(label, {total, naive_total, light, naive_light});
  }
  std::printf("\nshape checks: (a) hdov total falls with eta, <= naive for\n"
              "large eta; (b) hdov light I/O starts above naive (internal\n"
              "nodes + V-pages cost extra) and falls as branches terminate\n"
              "at internal LoDs.\n");
  return telemetry.Write() ? 0 : 1;
}

}  // namespace
}  // namespace hdov::bench

int main(int argc, char** argv) {
  return hdov::bench::Run(hdov::bench::ParseBenchArgs(argc, argv));
}
