// Component microbenchmarks (google-benchmark): CPU cost of the building
// blocks, plus ablations DESIGN.md calls out — linear-split vs sorted
// fallback pressure, cube-map resolution, sequential vs random page I/O,
// Eq. 4 heuristic on/off, and buffer-pool hit behaviour.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "hdov/builder.h"
#include "hdov/flat_search.h"
#include "hdov/flat_tree.h"
#include "hdov/search.h"
#include "mesh/primitives.h"
#include "rtree/linear_split.h"
#include "rtree/rtree.h"
#include "scene/cell_grid.h"
#include "scene/city_generator.h"
#include "simplify/simplifier.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"
#include "telemetry/flight_recorder.h"
#include "visibility/cubemap_buffer.h"
#include "visibility/precompute.h"

namespace hdov {
namespace {

Aabb RandomBox(Rng* rng, double world, double extent) {
  Vec3 lo(rng->Uniform(0, world), rng->Uniform(0, world),
          rng->Uniform(0, world));
  return Aabb(lo, lo + Vec3(rng->Uniform(0.1, extent),
                            rng->Uniform(0.1, extent),
                            rng->Uniform(0.1, extent)));
}

void BM_RTreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Rng rng(1);
    RTree tree;
    for (int i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(tree.Insert(RandomBox(&rng, 1000, 20),
                                           static_cast<uint64_t>(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(4000);

void BM_RTreeWindowQuery(benchmark::State& state) {
  Rng rng(2);
  RTree tree;
  for (int i = 0; i < 5000; ++i) {
    (void)tree.Insert(RandomBox(&rng, 1000, 20), static_cast<uint64_t>(i));
  }
  std::vector<uint64_t> results;
  for (auto _ : state) {
    Aabb window = RandomBox(&rng, 1000, static_cast<double>(state.range(0)));
    tree.WindowQuery(window, &results);
    benchmark::DoNotOptimize(results.data());
  }
}
BENCHMARK(BM_RTreeWindowQuery)->Arg(50)->Arg(200)->Arg(500);

void BM_LinearSplit(benchmark::State& state) {
  Rng rng(3);
  std::vector<Aabb> boxes;
  for (int i = 0; i < 33; ++i) {
    boxes.push_back(RandomBox(&rng, 100, 10));
  }
  for (auto _ : state) {
    SplitResult split = LinearSplit(boxes, 13);
    benchmark::DoNotOptimize(split.left.data());
  }
}
BENCHMARK(BM_LinearSplit);

void BM_SimplifyIcosphere(benchmark::State& state) {
  TriangleMesh sphere = MakeIcosphere(4);  // 5120 triangles.
  SimplifyOptions opt;
  opt.target_triangles = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Result<TriangleMesh> out = Simplify(sphere, opt);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetItemsProcessed(state.iterations() * 5120);
}
BENCHMARK(BM_SimplifyIcosphere)->Arg(1024)->Arg(256)->Arg(64);

void BM_CubeMapPointDov(benchmark::State& state) {
  CityOptions copt;
  copt.mode = GeometryMode::kProxy;
  copt.blocks_x = 8;
  copt.blocks_y = 8;
  Scene scene = std::move(*GenerateCity(copt));
  DovOptions dopt;
  dopt.cubemap.face_resolution = static_cast<int>(state.range(0));
  DovComputer computer(&scene, dopt);
  Vec3 center = scene.bounds().Center();
  for (auto _ : state) {
    const std::vector<float>& dov =
        computer.ComputePointDov(Vec3(center.x, center.y, 1.7));
    benchmark::DoNotOptimize(dov.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(scene.size()));
}
BENCHMARK(BM_CubeMapPointDov)->Arg(16)->Arg(32)->Arg(64);

void BM_PageDeviceSequentialVsRandom(benchmark::State& state) {
  const bool sequential = state.range(0) == 1;
  PageDevice device;
  const uint64_t kPages = 4096;
  device.AllocateUnmaterialized(kPages);
  Rng rng(4);
  std::string data;
  uint64_t next = 0;
  for (auto _ : state) {
    PageId page = sequential ? (next++ % kPages) : rng.NextUint64(kPages);
    benchmark::DoNotOptimize(device.Read(page, &data));
  }
  state.SetLabel(sequential ? "sequential" : "random");
  // The interesting output is the simulated cost, not wall time:
  state.counters["sim_ms_per_read"] = benchmark::Counter(
      device.clock().NowMillis(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.counters["seek_fraction"] =
      static_cast<double>(device.stats().seeks) /
      static_cast<double>(device.stats().page_reads);
}
BENCHMARK(BM_PageDeviceSequentialVsRandom)->Arg(1)->Arg(0);

// Cost of one flight-recorder event, enabled vs disabled. The recorder is
// always on in production paths, so the enabled per-event cost IS the
// observability tax; the disabled arm measures the short-circuit branch.
void BM_FlightRecorderOverhead(benchmark::State& state) {
  const bool enabled = state.range(0) == 1;
  telemetry::FlightRecorder recorder(1 << 16);
  recorder.set_enabled(enabled);
  const uint16_t code = telemetry::FlightInternName("bench");
  uint64_t n = 0;
  for (auto _ : state) {
    recorder.Record(telemetry::FlightEventType::kPageRead, code, n, 1);
    ++n;
    if (enabled && (n & 0xffff) == 0) {
      // Periodically consume so steady state measures ring writes, not an
      // ever-lapped ring (drop accounting is branch-identical either way).
      benchmark::DoNotOptimize(recorder.Drain(/*consume=*/true).events.size());
    }
  }
  state.SetLabel(enabled ? "enabled" : "disabled");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderOverhead)->Arg(1)->Arg(0);

void BM_BufferPoolGet(benchmark::State& state) {
  PageDevice device;
  const uint64_t kPages = 1024;
  for (uint64_t i = 0; i < kPages; ++i) {
    device.Allocate();
  }
  BufferPool pool(&device, static_cast<size_t>(state.range(0)));
  Rng rng(5);
  for (auto _ : state) {
    Result<BufferPool::PageRef> ref = pool.Get(rng.NextUint64(kPages));
    benchmark::DoNotOptimize(ref.ok());
  }
  state.counters["hit_rate"] = pool.stats().HitRate();
}
BENCHMARK(BM_BufferPoolGet)->Arg(64)->Arg(512)->Arg(1024);

// Thread scaling of the per-cell DoV precompute (the parallel build
// path). Per-cell work is independent, so real time should drop
// near-linearly with threads while the produced table stays
// bit-identical; compare the ms/op column across the thread args.
class PrecomputeFixture {
 public:
  static PrecomputeFixture& Get() {
    static PrecomputeFixture* instance = new PrecomputeFixture();
    return *instance;
  }

  Scene scene;
  std::unique_ptr<CellGrid> grid;

 private:
  PrecomputeFixture() {
    CityOptions copt;
    copt.mode = GeometryMode::kProxy;
    copt.blocks_x = 12;
    copt.blocks_y = 12;
    scene = std::move(*GenerateCity(copt));
    CellGridOptions gopt;
    gopt.cells_x = 12;
    gopt.cells_y = 12;
    grid = std::make_unique<CellGrid>(
        std::move(*CellGrid::Build(scene.bounds(), gopt)));
  }
};

void BM_PrecomputeVisibilityThreads(benchmark::State& state) {
  PrecomputeFixture& fx = PrecomputeFixture::Get();
  PrecomputeOptions popt;
  popt.dov.cubemap.face_resolution = 32;
  popt.samples_per_cell = 1;
  popt.threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    Result<VisibilityTable> table =
        PrecomputeVisibility(fx.scene, *fx.grid, popt);
    benchmark::DoNotOptimize(table.ok());
  }
  state.SetItemsProcessed(state.iterations() * fx.grid->num_cells());
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PrecomputeVisibilityThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Ablation: full HDoV search with and without the Eq. 4 NVO heuristic.
class SearchFixture {
 public:
  static SearchFixture& Get() {
    static SearchFixture* instance = new SearchFixture();
    return *instance;
  }

  Scene scene;
  std::unique_ptr<CellGrid> grid;
  std::unique_ptr<VisibilityTable> table;
  PageDevice model_device;
  std::unique_ptr<ModelStore> models;
  std::unique_ptr<HdovTree> tree;
  PageDevice store_device;
  std::unique_ptr<VisibilityStore> store;
  std::unique_ptr<HdovSearcher> searcher;
  std::unique_ptr<FlatHdovTree> flat;
  std::unique_ptr<FlatSearcher> flat_searcher;

 private:
  SearchFixture() {
    CityOptions copt;
    copt.mode = GeometryMode::kProxy;
    copt.blocks_x = 10;
    copt.blocks_y = 10;
    scene = std::move(*GenerateCity(copt));
    CellGridOptions gopt;
    gopt.cells_x = 8;
    gopt.cells_y = 8;
    grid = std::make_unique<CellGrid>(
        std::move(*CellGrid::Build(scene.bounds(), gopt)));
    PrecomputeOptions popt;
    popt.dov.cubemap.face_resolution = 16;
    popt.samples_per_cell = 1;
    table = std::make_unique<VisibilityTable>(
        std::move(*PrecomputeVisibility(scene, *grid, popt)));
    models = std::make_unique<ModelStore>(&model_device);
    tree = std::make_unique<HdovTree>(
        std::move(*HdovBuilder::Build(scene, models.get(),
                                      HdovBuildOptions())));
    store = std::move(BuildStore(StorageScheme::kIndexedVertical, *tree,
                                 *table, &store_device))
                .value();
    searcher = std::make_unique<HdovSearcher>(tree.get(), &scene,
                                              models.get(), nullptr);
    flat = std::make_unique<FlatHdovTree>(
        std::move(*FlatHdovTree::Compile(*tree)));
    flat_searcher = std::make_unique<FlatSearcher>(flat.get(), &scene,
                                                   models.get(), nullptr);
  }
};

void BM_HdovSearch(benchmark::State& state) {
  SearchFixture& fx = SearchFixture::Get();
  SearchOptions opt;
  opt.eta = static_cast<double>(state.range(0)) / 100000.0;
  opt.heuristic = static_cast<TerminationHeuristic>(state.range(1));
  std::vector<RetrievedLod> result;
  CellId cell = 0;
  uint64_t total_items = 0;
  uint64_t queries = 0;
  for (auto _ : state) {
    (void)fx.searcher->Search(fx.store.get(), cell, opt, &result);
    benchmark::DoNotOptimize(result.data());
    total_items += result.size();
    ++queries;
    cell = (cell + 1) % fx.grid->num_cells();
  }
  state.counters["avg_result_items"] =
      static_cast<double>(total_items) / static_cast<double>(queries);
}
BENCHMARK(BM_HdovSearch)
    ->Args({0, 0})      // eta = 0.
    ->Args({100, 0})    // eta = 0.001, Eq. 4.
    ->Args({100, 1})    // eta = 0.001, eta-only (ablation).
    ->Args({100, 2})    // eta = 0.001, cost model (extension).
    ->Args({800, 0})    // eta = 0.008, Eq. 4.
    ->Args({800, 2});   // eta = 0.008, cost model.

// The same queries through the flat backend (packed SoA tree + bitmap
// V-page index). Same args as BM_HdovSearch, so the wall-time comparison
// of the two Fig. 3 implementations reads straight off the report; the
// simulated work per query is bit-identical by construction (see
// tests/flat_search_test.cc).
void BM_HdovSearchFlat(benchmark::State& state) {
  SearchFixture& fx = SearchFixture::Get();
  SearchOptions opt;
  opt.eta = static_cast<double>(state.range(0)) / 100000.0;
  opt.heuristic = static_cast<TerminationHeuristic>(state.range(1));
  std::vector<RetrievedLod> result;
  CellId cell = 0;
  uint64_t total_items = 0;
  uint64_t queries = 0;
  for (auto _ : state) {
    (void)fx.flat_searcher->Search(fx.store.get(), cell, opt, &result);
    benchmark::DoNotOptimize(result.data());
    total_items += result.size();
    ++queries;
    cell = (cell + 1) % fx.grid->num_cells();
  }
  state.counters["avg_result_items"] =
      static_cast<double>(total_items) / static_cast<double>(queries);
}
BENCHMARK(BM_HdovSearchFlat)
    ->Args({0, 0})      // eta = 0.
    ->Args({100, 0})    // eta = 0.001, Eq. 4.
    ->Args({100, 1})    // eta = 0.001, eta-only (ablation).
    ->Args({100, 2})    // eta = 0.001, cost model (extension).
    ->Args({800, 0})    // eta = 0.008, Eq. 4.
    ->Args({800, 2});   // eta = 0.008, cost model.

// One-time cost of compiling the packed layout from a built tree (paid at
// world load; amortized over every query after).
void BM_FlatTreeCompile(benchmark::State& state) {
  SearchFixture& fx = SearchFixture::Get();
  for (auto _ : state) {
    Result<FlatHdovTree> flat = FlatHdovTree::Compile(*fx.tree);
    benchmark::DoNotOptimize(flat.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.tree->num_nodes()));
}
BENCHMARK(BM_FlatTreeCompile);

// Rank/select probes of the per-cell V-page bitmap index vs the
// indexed-vertical store's per-lookup binary search over the same
// segment.
void BM_VPageIndexLookup(benchmark::State& state) {
  SearchFixture& fx = SearchFixture::Get();
  const bool bitmap = state.range(0) == 1;
  (void)fx.store->BeginCell(0);
  std::vector<uint32_t> nodes;
  std::vector<uint64_t> slots;
  (void)fx.store->FillSegment(&nodes, &slots);
  VPageBitmapIndex index;
  index.Rebuild(static_cast<uint32_t>(fx.tree->num_nodes()), nodes, slots);
  Rng rng(6);
  const auto num_nodes = static_cast<uint32_t>(fx.tree->num_nodes());
  uint64_t slot = 0;
  for (auto _ : state) {
    const auto node = static_cast<uint32_t>(rng.NextUint64(num_nodes));
    if (bitmap) {
      benchmark::DoNotOptimize(index.Lookup(node, &slot));
    } else {
      auto it = std::lower_bound(nodes.begin(), nodes.end(), node);
      benchmark::DoNotOptimize(it != nodes.end() && *it == node);
    }
  }
  state.SetLabel(bitmap ? "bitmap" : "binary_search");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VPageIndexLookup)->Arg(1)->Arg(0);

}  // namespace
}  // namespace hdov

// Custom main instead of BENCHMARK_MAIN(): translate the repo-standard
// --json-out=<path> flag into google-benchmark's own JSON reporter flags
// so every bench binary shares one machine-readable output convention.
// Micro timings are wall-clock only, so this file is not part of the CI
// drift gate (see EXPERIMENTS.md).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string format_flag;
  constexpr const char kJsonOut[] = "--json-out=";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (std::strncmp(*it, kJsonOut, sizeof(kJsonOut) - 1) == 0) {
      out_flag = std::string("--benchmark_out=") +
                 (*it + sizeof(kJsonOut) - 1);
      format_flag = "--benchmark_out_format=json";
      args.erase(it);
      break;
    }
  }
  // Accepted for CI-invocation symmetry with the figure benches; this
  // binary always runs both backends side by side (BM_HdovSearch vs
  // BM_HdovSearchFlat), so the flag has nothing to select.
  constexpr const char kSearchBackend[] = "--search-backend=";
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (std::strncmp(*it, kSearchBackend, sizeof(kSearchBackend) - 1) == 0) {
      args.erase(it);
      break;
    }
  }
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
