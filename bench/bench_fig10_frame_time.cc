// Figure 10 reproduction: per-frame rendering time over a recorded
// walkthrough session.
//  (a) VISUAL (eta = 0.001) vs REVIEW (400 m query boxes): REVIEW is both
//      slower on average and "choppier" (tall spikes when spatial queries
//      fire).
//  (b) VISUAL at eta = 0.001 vs eta = 0.0003: the larger threshold is
//      faster (coarser representations) at little fidelity cost.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "walkthrough/frame_loop.h"
#include "walkthrough/review_system.h"
#include "walkthrough/visual_system.h"

namespace hdov::bench {
namespace {

Result<SessionSummary> Play(WalkthroughSystem* system,
                            const Session& session) {
  PlayOptions popt;
  popt.keep_frames = true;
  return PlaySession(system, session, popt);
}

void PrintSeries(SeriesTable* table, const char* label,
                 const SessionSummary& summary, size_t stride) {
  const auto spikes = static_cast<size_t>(std::count_if(
      summary.frames.begin(), summary.frames.end(),
      [&](const FrameResult& f) {
        return f.frame_time_ms > 2.0 * summary.avg_frame_time_ms;
      }));
  table->Row(label, {summary.avg_frame_time_ms, summary.var_frame_time,
                     static_cast<double>(spikes)});
  std::printf("  frame series (every %zuth frame, ms):", stride);
  for (size_t i = 0; i < summary.frames.size(); i += stride) {
    std::printf(" %.1f", summary.frames[i].frame_time_ms);
  }
  std::printf("\n\n");
}

int Run(const BenchArgs& args) {
  TelemetryScope telemetry(args, "bench_fig10_frame_time");
  telemetry.Header("Figure 10: frame time during an interactive walkthrough",
                   "Figures 10(a,b)");
  Testbed bed = BuildTestbed(DefaultTestbedOptions(), telemetry.report());
  PrintTestbedSummary(bed);

  SessionOptions sopt;
  sopt.num_frames = LargeScale() ? 1500 : 500;
  Session session =
      RecordSession(MotionPattern::kNormalWalk, bed.scene.bounds(), sopt);

  VisualOptions v1 = DefaultVisualOptions();
  v1.eta = 0.001;
  Result<std::unique_ptr<VisualSystem>> visual_1 =
      MakeVisualSystem(bed, v1);
  VisualOptions v2 = DefaultVisualOptions();
  v2.eta = 0.0003;
  Result<std::unique_ptr<VisualSystem>> visual_2 =
      MakeVisualSystem(bed, v2);
  ReviewOptions ropt;
  ropt.query_box_size = 400.0;
  ropt.cache_distance = 600.0;
  Result<std::unique_ptr<ReviewSystem>> review =
      ReviewSystem::Create(&bed.scene, ropt);
  if (!visual_1.ok() || !visual_2.ok() || !review.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  telemetry.Attach(visual_1->get(), "visual.eta_0.001");
  telemetry.Attach(visual_2->get(), "visual.eta_0.0003");
  telemetry.Attach(review->get(), "review");

  WallTimer playback;
  Result<SessionSummary> s_visual_1 = Play(visual_1->get(), session);
  telemetry.report()->RecordTiming("session.play", playback.ElapsedMs());
  playback.Restart();
  Result<SessionSummary> s_visual_2 = Play(visual_2->get(), session);
  telemetry.report()->RecordTiming("session.play", playback.ElapsedMs());
  playback.Restart();
  Result<SessionSummary> s_review = Play(review->get(), session);
  telemetry.report()->RecordTiming("session.play", playback.ElapsedMs());
  if (!s_visual_1.ok() || !s_visual_2.ok() || !s_review.ok()) {
    std::fprintf(stderr, "playback failed\n");
    return 1;
  }

  const size_t stride = std::max<size_t>(1, session.frames.size() / 40);
  SeriesTable table(telemetry.report(), "fig10.frame_stats", "config", 18,
                    {SeriesTable::Col{"avg(ms)", 10, 2},
                     SeriesTable::Col{"variance", 10, 2},
                     SeriesTable::Col{"spikes>2x", 10, 0}});
  std::printf("--- Figure 10(a): VISUAL(eta=0.001) vs REVIEW(400m) ---\n");
  PrintSeries(&table, "VISUAL eta=0.001", *s_visual_1, stride);
  PrintSeries(&table, "REVIEW box=400m", *s_review, stride);

  std::printf("--- Figure 10(b): VISUAL eta=0.001 vs eta=0.0003 ---\n");
  PrintSeries(&table, "VISUAL eta=0.0003", *s_visual_2, stride);

  std::printf("shape checks: VISUAL avg < REVIEW avg (%s); VISUAL variance"
              " < REVIEW variance (%s);\n"
              "eta=0.001 at least as fast as eta=0.0003 (%s, paper: up to"
              " ~20%% faster)\n",
              s_visual_1->avg_frame_time_ms < s_review->avg_frame_time_ms
                  ? "yes" : "NO",
              s_visual_1->var_frame_time < s_review->var_frame_time
                  ? "yes" : "NO",
              s_visual_1->avg_frame_time_ms <=
                      s_visual_2->avg_frame_time_ms + 1e-9
                  ? "yes" : "NO");
  return telemetry.Write() ? 0 : 1;
}

}  // namespace
}  // namespace hdov::bench

int main(int argc, char** argv) {
  return hdov::bench::Run(hdov::bench::ParseBenchArgs(argc, argv));
}
