// Shared experiment testbed for the paper-reproduction benchmarks. Builds
// the synthetic city, viewing-cell grid and precomputed visibility table
// that all experiment binaries run against, and provides small printing
// helpers so each bench emits the rows/series of its paper counterpart.
//
// Scale knob: set HDOV_BENCH_SCALE=large in the environment to run closer
// to the paper's dataset sizes (slower); the default is sized to finish
// each binary in seconds while preserving every qualitative shape.

#ifndef HDOV_BENCH_BENCH_UTIL_H_
#define HDOV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "scene/cell_grid.h"
#include "scene/city_generator.h"
#include "scene/session.h"
#include "telemetry/telemetry.h"
#include "visibility/precompute.h"
#include "walkthrough/visual_system.h"

namespace hdov::bench {

inline bool LargeScale() {
  const char* scale = std::getenv("HDOV_BENCH_SCALE");
  return scale != nullptr && std::strcmp(scale, "large") == 0;
}

struct BenchArgs {
  std::string telemetry_out;  // Empty = telemetry stays off.
  uint32_t threads = 1;       // Precompute/build workers (0 = hardware).
};

// The parsed --threads value, readable from DefaultTestbedOptions and
// DefaultVisualOptions so every bench gets the flag without per-bench
// plumbing. Thread count never changes any simulated number — only
// build wall-clock — so the figures are unaffected.
inline uint32_t& BenchThreads() {
  static uint32_t threads = 1;
  return threads;
}

// Parses the flags shared by every experiment binary. Unknown flags abort
// so a typo does not silently run without its effect.
inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  constexpr const char kOut[] = "--telemetry-out=";
  constexpr const char kThreads[] = "--threads=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kOut, sizeof(kOut) - 1) == 0) {
      args.telemetry_out = argv[i] + sizeof(kOut) - 1;
      if (args.telemetry_out.empty()) {
        std::fprintf(stderr, "--telemetry-out needs a path\n");
        std::exit(2);
      }
    } else if (std::strncmp(argv[i], kThreads, sizeof(kThreads) - 1) == 0) {
      char* end = nullptr;
      const char* value = argv[i] + sizeof(kThreads) - 1;
      const unsigned long parsed = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "--threads needs a number (0 = hardware)\n");
        std::exit(2);
      }
      args.threads = static_cast<uint32_t>(parsed);
      BenchThreads() = args.threads;
    } else {
      std::fprintf(stderr, "unknown flag %s (supported: %s<path>, %sN)\n",
                   argv[i], kOut, kThreads);
      std::exit(2);
    }
  }
  return args;
}

// Owns the bench's Telemetry context (when --telemetry-out was given) and
// writes the JSON snapshot at the end of the run. Declare the scope
// BEFORE the systems it attaches: systems unregister themselves from the
// context on destruction, so the context must be destroyed last.
class TelemetryScope {
 public:
  explicit TelemetryScope(const BenchArgs& args) : path_(args.telemetry_out) {
    if (!path_.empty()) {
      telemetry_ = std::make_unique<telemetry::Telemetry>();
    }
  }

  bool on() const { return telemetry_ != nullptr; }
  telemetry::Telemetry* get() { return telemetry_.get(); }

  void Attach(WalkthroughSystem* system, const std::string& prefix) {
    if (telemetry_ != nullptr) {
      system->AttachTelemetry(telemetry_.get(), prefix);
    }
  }

  // Writes the snapshot (idempotent). Returns false on I/O failure.
  bool Write() {
    if (telemetry_ == nullptr || written_) {
      return true;
    }
    written_ = true;
    if (Status s = telemetry_->WriteJsonFile(path_); !s.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", s.ToString().c_str());
      return false;
    }
    std::printf("\ntelemetry: wrote %s (%llu frame records)\n", path_.c_str(),
                static_cast<unsigned long long>(telemetry_->frames_recorded()));
    return true;
  }

 private:
  std::string path_;
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  bool written_ = false;
};

struct TestbedOptions {
  int blocks = 16;        // blocks x blocks city.
  int cells = 16;         // cells x cells viewing grid.
  int face_resolution = 64;
  int samples_per_cell = 1;
  uint64_t seed = 20030101;
  uint32_t threads = 1;   // Precompute workers (0 = hardware).
};

struct Testbed {
  Scene scene;
  CellGrid grid;
  VisibilityTable table;
};

inline TestbedOptions DefaultTestbedOptions() {
  TestbedOptions opt;
  opt.threads = BenchThreads();
  if (LargeScale()) {
    opt.blocks = 20;
    opt.cells = 24;
    opt.samples_per_cell = 5;
  }
  return opt;
}

// Builds the default experiment environment; aborts on error (benchmarks
// have no meaningful recovery path).
inline Testbed BuildTestbed(const TestbedOptions& opt) {
  CityOptions copt;
  copt.mode = GeometryMode::kProxy;
  copt.blocks_x = opt.blocks;
  copt.blocks_y = opt.blocks;
  copt.seed = opt.seed;
  Result<Scene> scene = GenerateCity(copt);
  if (!scene.ok()) {
    std::fprintf(stderr, "testbed: %s\n", scene.status().ToString().c_str());
    std::abort();
  }

  CellGridOptions gopt;
  gopt.cells_x = opt.cells;
  gopt.cells_y = opt.cells;
  Result<CellGrid> grid = CellGrid::Build(scene->bounds(), gopt);
  if (!grid.ok()) {
    std::fprintf(stderr, "testbed: %s\n", grid.status().ToString().c_str());
    std::abort();
  }

  PrecomputeOptions popt;
  popt.dov.cubemap.face_resolution = opt.face_resolution;
  popt.samples_per_cell = opt.samples_per_cell;
  popt.threads = opt.threads;
  Result<VisibilityTable> table = PrecomputeVisibility(*scene, *grid, popt);
  if (!table.ok()) {
    std::fprintf(stderr, "testbed: %s\n", table.status().ToString().c_str());
    std::abort();
  }
  return Testbed{std::move(*scene), std::move(*grid), std::move(*table)};
}

// Experiment-standard VISUAL configuration: fanout 8 so that leaf nodes
// cover block-scale object clusters — the granularity at which distant
// clusters' aggregate DoV falls below the paper's eta range [0, 0.008].
inline VisualOptions DefaultVisualOptions() {
  VisualOptions opt;
  opt.build.rtree.max_entries = 8;
  opt.build.rtree.min_entries = 3;
  opt.prefetch_models_per_frame = 2;  // Smooths walkthrough cell flips.
  opt.build_threads = BenchThreads();
  return opt;
}

// `count` random query viewpoints at eye height inside the world bounds.
inline std::vector<Vec3> RandomViewpoints(const Aabb& bounds, size_t count,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    points.emplace_back(rng.Uniform(bounds.min.x, bounds.max.x),
                        rng.Uniform(bounds.min.y, bounds.max.y), 1.7);
  }
  return points;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s of 'HDoV-tree: The Structure, The Storage, The"
              " Speed', ICDE 2003)\n", paper_ref);
  std::printf("==============================================================\n");
}

inline void PrintTestbedSummary(const Testbed& bed) {
  std::printf("testbed: %s | %u cells | avg %.1f visible objects/cell\n\n",
              bed.scene.Summary().c_str(), bed.grid.num_cells(),
              bed.table.AverageVisibleObjects());
}

inline double MB(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace hdov::bench

#endif  // HDOV_BENCH_BENCH_UTIL_H_
