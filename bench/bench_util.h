// Shared experiment testbed for the paper-reproduction benchmarks. Builds
// the synthetic city, viewing-cell grid and precomputed visibility table
// that all experiment binaries run against, and provides the shared
// emit helpers (SeriesTable) through which each bench prints the
// rows/series of its paper counterpart AND records them into the
// machine-readable bench report — one call, one source of truth.
//
// Flags every bench accepts (see ParseBenchArgs):
//   --json-out=<path>       write a telemetry::BenchReport document
//                           (figure rows, counters, env fingerprint);
//   --telemetry-out=<path>  write the full telemetry snapshot;
//   --trace-out=<path>      enable span recording and write a Chrome
//                           trace-event file (chrome://tracing);
//   --trace-sample=N        with --trace-out, give only 1-in-N queries a
//                           full span tree (default 1 = every query);
//   --flight-out=<path>     drain the always-on flight recorder into a
//                           binary dump (see docs/telemetry.md);
//   --slowdump-out=<path>   write the slow-frame captures ("HDOVSLOW",
//                           inspect with hdov_inspect --slowdump);
//   --slowdump-threshold-ms=F  also capture any frame slower than F ms
//                           (on top of the default trailing-p99 trigger);
//   --metrics-every=N       export a Prometheus-text metrics sample every
//                           N recorded frames (plus one final sample);
//   --metrics-out=<path>    destination of the --metrics-every log
//                           (default metrics.prom);
//   --threads=N             precompute/build workers (0 = hardware);
//   --db=<path>             load the testbed and every VISUAL system from
//                           a tools/hdov_build snapshot instead of
//                           rebuilding (see docs/storage.md);
//   --search-backend=NAME   run every VISUAL query through the named
//                           Fig. 3 implementation: "legacy" (recursive
//                           searcher, default) or "flat" (packed SoA tree
//                           + bitmap V-page index, see docs/flat_tree.md).
//                           Simulated results are bit-identical either
//                           way; only wall-clock differs.
//   --prefetch=MODE         prefetch pipeline of every VISUAL system:
//                           "off" (default; billing identical to a build
//                           without the subsystem), "sync" (the legacy
//                           idle-frame model prefetch) or "async" (the
//                           overlapped pipeline, docs/prefetch.md).
//
// Scale knob: set HDOV_BENCH_SCALE=large in the environment to run closer
// to the paper's dataset sizes (slower); the default is sized to finish
// each binary in seconds while preserving every qualitative shape.

#ifndef HDOV_BENCH_BENCH_UTIL_H_
#define HDOV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "persist/snapshot.h"
#include "scene/cell_grid.h"
#include "scene/city_generator.h"
#include "scene/session.h"
#include "telemetry/bench_report.h"
#include "telemetry/exposition.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/slow_frame.h"
#include "telemetry/telemetry.h"
#include "testbed/testbed_glue.h"
#include "visibility/precompute.h"
#include "walkthrough/experiment_testbed.h"
#include "walkthrough/visual_system.h"

// Stamped by bench/CMakeLists.txt at configure time; informational only.
#ifndef HDOV_GIT_REVISION
#define HDOV_GIT_REVISION "unknown"
#endif

namespace hdov::bench {

using telemetry::WallTimer;

// The world-construction glue itself lives in testbed/testbed_glue.h (a
// non-bench target, so tools and the serving layer can share it); these
// aliases keep the historical bench spellings working.
using testbed::LargeScale;
using testbed::DefaultTestbedOptions;
using testbed::DefaultVisualOptions;
using testbed::MakeVisualSystem;
using testbed::RandomViewpoints;
using testbed::PrintTestbedSummary;
using testbed::MB;

// The parsed --threads value, readable from DefaultTestbedOptions and
// DefaultVisualOptions so every bench gets the flag without per-bench
// plumbing.
inline uint32_t& BenchThreads() { return testbed::DefaultThreads(); }

// The parsed --db value; when non-empty, BuildTestbed and MakeVisualSystem
// load the world from that snapshot instead of rebuilding it.
inline std::string& BenchDbPath() { return testbed::DefaultDbPath(); }

// Builds the default experiment environment — or, with --db, loads it
// from the snapshot — aborting on error.
inline Testbed BuildTestbed(const TestbedOptions& opt,
                            telemetry::BenchReport* report = nullptr) {
  return testbed::BuildTestbedOrDie(opt, report);
}

struct BenchArgs {
  std::string telemetry_out;  // Empty = full snapshot not written.
  std::string json_out;       // Empty = bench report not written.
  std::string trace_out;      // Empty = span recording stays off.
  std::string flight_out;     // Empty = flight recorder not dumped.
  std::string slowdump_out;   // Empty = slow-frame captures not written.
  std::string metrics_out = "metrics.prom";  // --metrics-every target.
  std::string db_path;        // Empty = build the world from scratch.
  double slowdump_threshold_ms = 0.0;  // Absolute trigger; 0 = p99 only.
  uint32_t threads = 1;       // Precompute/build workers (0 = hardware).
  uint32_t metrics_every = 0; // 0 = periodic exposition export off.
  uint32_t trace_sample = 1;  // Span tree for 1-in-N queries.
  SearchBackend backend = SearchBackend::kLegacy;  // --search-backend.
  prefetch::PrefetchMode prefetch = prefetch::PrefetchMode::kOff;
};

// Parses the flags shared by every experiment binary. Unknown flags abort
// so a typo does not silently run without its effect.
inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  constexpr const char kTelemetryOut[] = "--telemetry-out=";
  constexpr const char kJsonOut[] = "--json-out=";
  constexpr const char kTraceOut[] = "--trace-out=";
  constexpr const char kTraceSample[] = "--trace-sample=";
  constexpr const char kFlightOut[] = "--flight-out=";
  constexpr const char kSlowdumpOut[] = "--slowdump-out=";
  constexpr const char kSlowdumpThreshold[] = "--slowdump-threshold-ms=";
  constexpr const char kMetricsEvery[] = "--metrics-every=";
  constexpr const char kMetricsOut[] = "--metrics-out=";
  constexpr const char kDb[] = "--db=";
  constexpr const char kThreads[] = "--threads=";
  constexpr const char kSearchBackend[] = "--search-backend=";
  constexpr const char kPrefetch[] = "--prefetch=";
  const auto path_flag = [](const char* arg, const char* flag, size_t len,
                            std::string* out) {
    if (std::strncmp(arg, flag, len) != 0) {
      return false;
    }
    *out = arg + len;
    if (out->empty()) {
      std::fprintf(stderr, "%s needs a path\n", flag);
      std::exit(2);
    }
    return true;
  };
  const auto count_flag = [](const char* arg, const char* flag, size_t len,
                             uint32_t* out) {
    if (std::strncmp(arg, flag, len) != 0) {
      return false;
    }
    char* end = nullptr;
    const char* value = arg + len;
    const unsigned long parsed = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0') {
      std::fprintf(stderr, "%s needs a number\n", flag);
      std::exit(2);
    }
    *out = static_cast<uint32_t>(parsed);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (path_flag(argv[i], kTelemetryOut, sizeof(kTelemetryOut) - 1,
                  &args.telemetry_out) ||
        path_flag(argv[i], kJsonOut, sizeof(kJsonOut) - 1, &args.json_out) ||
        path_flag(argv[i], kTraceOut, sizeof(kTraceOut) - 1,
                  &args.trace_out) ||
        path_flag(argv[i], kFlightOut, sizeof(kFlightOut) - 1,
                  &args.flight_out) ||
        path_flag(argv[i], kSlowdumpOut, sizeof(kSlowdumpOut) - 1,
                  &args.slowdump_out) ||
        path_flag(argv[i], kMetricsOut, sizeof(kMetricsOut) - 1,
                  &args.metrics_out) ||
        path_flag(argv[i], kDb, sizeof(kDb) - 1, &args.db_path)) {
      BenchDbPath() = args.db_path;
      continue;
    }
    if (count_flag(argv[i], kTraceSample, sizeof(kTraceSample) - 1,
                   &args.trace_sample) ||
        count_flag(argv[i], kMetricsEvery, sizeof(kMetricsEvery) - 1,
                   &args.metrics_every)) {
      continue;
    }
    if (std::strncmp(argv[i], kSlowdumpThreshold,
                     sizeof(kSlowdumpThreshold) - 1) == 0) {
      char* end = nullptr;
      const char* value = argv[i] + sizeof(kSlowdumpThreshold) - 1;
      const double parsed = std::strtod(value, &end);
      if (end == value || *end != '\0' || parsed < 0.0) {
        std::fprintf(stderr, "%s needs a non-negative number\n",
                     kSlowdumpThreshold);
        std::exit(2);
      }
      args.slowdump_threshold_ms = parsed;
      continue;
    }
    if (std::strncmp(argv[i], kSearchBackend,
                     sizeof(kSearchBackend) - 1) == 0) {
      const char* value = argv[i] + sizeof(kSearchBackend) - 1;
      if (!ParseSearchBackend(value, &args.backend)) {
        std::fprintf(stderr,
                     "--search-backend needs \"legacy\" or \"flat\"\n");
        std::exit(2);
      }
      // Seed the process-wide default so every VisualOptions constructed
      // after parsing (testbed glue, session views) picks it up.
      DefaultSearchBackend() = args.backend;
      continue;
    }
    if (std::strncmp(argv[i], kPrefetch, sizeof(kPrefetch) - 1) == 0) {
      const char* value = argv[i] + sizeof(kPrefetch) - 1;
      if (!prefetch::ParsePrefetchMode(value, &args.prefetch)) {
        std::fprintf(stderr,
                     "--prefetch needs \"off\", \"sync\" or \"async\"\n");
        std::exit(2);
      }
      prefetch::DefaultPrefetchMode() = args.prefetch;
      continue;
    }
    if (std::strncmp(argv[i], kThreads, sizeof(kThreads) - 1) == 0) {
      char* end = nullptr;
      const char* value = argv[i] + sizeof(kThreads) - 1;
      const unsigned long parsed = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0') {
        std::fprintf(stderr, "--threads needs a number (0 = hardware)\n");
        std::exit(2);
      }
      args.threads = static_cast<uint32_t>(parsed);
      BenchThreads() = args.threads;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: %s<path>, %s<path>,"
                   " %s<path>, %sN, %s<path>, %s<path>, %sF, %sN, %s<path>,"
                   " %s<path>, %sN, %sNAME, %sMODE)\n",
                   argv[i], kTelemetryOut, kJsonOut, kTraceOut, kTraceSample,
                   kFlightOut, kSlowdumpOut, kSlowdumpThreshold,
                   kMetricsEvery, kMetricsOut, kDb, kThreads, kSearchBackend,
                   kPrefetch);
      std::exit(2);
    }
  }
  return args;
}

// Owns the bench's Telemetry context and BenchReport, and writes the
// requested output files at the end of the run. Telemetry is attached
// when any of --telemetry-out / --json-out / --trace-out was given (the
// report's counter digest and the trace come from it); with no flags the
// instrumentation stays detached and the report is print-only.
//
// Declare the scope BEFORE the systems it attaches: systems unregister
// themselves from the context on destruction, so the context must be
// destroyed last — and Write() must run while they still live, or the
// captured metric snapshot loses their registered views.
class TelemetryScope {
 public:
  TelemetryScope(const BenchArgs& args, const char* binary)
      : telemetry_out_(args.telemetry_out),
        json_out_(args.json_out),
        trace_out_(args.trace_out),
        flight_out_(args.flight_out),
        slowdump_out_(args.slowdump_out),
        metrics_every_(args.metrics_every) {
    if (!slowdump_out_.empty()) {
      // Fresh capture window for this run; the default trailing-p99
      // trigger stays on and an absolute threshold composes with it.
      telemetry::SlowFrameOptions slow;
      slow.threshold_ms = args.slowdump_threshold_ms;
      telemetry::GlobalSlowFrameCapture().Configure(slow);
    }
    if (!telemetry_out_.empty() || !json_out_.empty() ||
        !trace_out_.empty() || metrics_every_ > 0) {
      telemetry_ = std::make_unique<telemetry::Telemetry>();
      if (!trace_out_.empty()) {
        telemetry_->tracer().set_enabled(true);
        telemetry_->tracer().set_sample_every(args.trace_sample);
      }
      if (metrics_every_ > 0) {
        metrics_log_ =
            std::make_unique<telemetry::ExpositionLog>(args.metrics_out);
        // Sampling happens inside RecordFrame, so an exposition block
        // lands every N frames regardless of which system emits them.
        telemetry_->set_frame_callback(
            [this](const telemetry::FrameRecord&) {
              if (++frames_seen_ % metrics_every_ == 0) {
                if (Status s = metrics_log_->Sample(
                        telemetry_->metrics().Snapshot(),
                        "frame " + std::to_string(frames_seen_));
                    !s.ok()) {
                  std::fprintf(stderr, "metrics: %s\n",
                               s.ToString().c_str());
                }
              }
            });
      }
    }
    report_.set_binary(binary);
    report_.set_scale(LargeScale() ? "large" : "default");
    telemetry::BenchEnvironment env;
    env.git_revision = HDOV_GIT_REVISION;
    env.cpu_count = std::thread::hardware_concurrency();
    env.threads = args.threads;
    report_.set_environment(std::move(env));
  }

  bool on() const { return telemetry_ != nullptr; }
  telemetry::Telemetry* get() { return telemetry_.get(); }
  telemetry::BenchReport* report() { return &report_; }

  // Prints the standard bench banner and stamps the title into the
  // report, so the two cannot disagree.
  void Header(const char* title, const char* paper_ref) {
    report_.set_title(title);
    std::printf(
        "==============================================================\n");
    std::printf("%s\n", title);
    std::printf("(reproduces %s of 'HDoV-tree: The Structure, The Storage,"
                " The Speed', ICDE 2003)\n", paper_ref);
    std::printf(
        "==============================================================\n");
  }

  void Attach(WalkthroughSystem* system, const std::string& prefix) {
    if (telemetry_ != nullptr) {
      system->AttachTelemetry(telemetry_.get(), prefix);
    }
  }

  // Writes every requested output (idempotent). Returns false on I/O
  // failure. Call while attached systems are still alive.
  bool Write() {
    if (written_) {
      return true;
    }
    written_ = true;
    bool ok = true;
    if (!json_out_.empty()) {
      if (telemetry_ != nullptr) {
        report_.CaptureFrom(*telemetry_);
      }
      if (Status s = report_.WriteFile(json_out_); !s.ok()) {
        std::fprintf(stderr, "bench report: %s\n", s.ToString().c_str());
        ok = false;
      } else {
        std::printf("\nbench report: wrote %s\n", json_out_.c_str());
      }
    }
    if (!telemetry_out_.empty() && telemetry_ != nullptr) {
      if (Status s = telemetry_->WriteJsonFile(telemetry_out_); !s.ok()) {
        std::fprintf(stderr, "telemetry: %s\n", s.ToString().c_str());
        ok = false;
      } else {
        std::printf("\ntelemetry: wrote %s (%llu frame records)\n",
                    telemetry_out_.c_str(),
                    static_cast<unsigned long long>(
                        telemetry_->frames_recorded()));
      }
    }
    if (!trace_out_.empty() && telemetry_ != nullptr) {
      if (Status s = telemetry_->WriteChromeTrace(trace_out_); !s.ok()) {
        std::fprintf(stderr, "trace: %s\n", s.ToString().c_str());
        ok = false;
      } else {
        std::printf("\ntrace: wrote %s (%zu spans; open in"
                    " chrome://tracing)\n",
                    trace_out_.c_str(), telemetry_->tracer().num_spans());
      }
    }
    if (metrics_log_ != nullptr && telemetry_ != nullptr) {
      // Final sample so short runs (and the tail of long ones) always
      // land in the log, even when frames % N != 0.
      if (Status s = metrics_log_->Sample(telemetry_->metrics().Snapshot(),
                                          "final");
          !s.ok()) {
        std::fprintf(stderr, "metrics: %s\n", s.ToString().c_str());
        ok = false;
      } else {
        std::printf("\nmetrics: wrote %s (%llu samples)\n",
                    metrics_log_->path().c_str(),
                    static_cast<unsigned long long>(
                        metrics_log_->samples_written()));
      }
    }
    if (!flight_out_.empty()) {
      telemetry::FlightRecorder& recorder =
          telemetry::GlobalFlightRecorder();
      if (Status s = recorder.WriteDump(flight_out_); !s.ok()) {
        std::fprintf(stderr, "flight: %s\n", s.ToString().c_str());
        ok = false;
      } else {
        std::printf("\nflight: wrote %s (%llu events recorded, %llu"
                    " dropped)\n",
                    flight_out_.c_str(),
                    static_cast<unsigned long long>(
                        recorder.events_recorded()),
                    static_cast<unsigned long long>(
                        recorder.events_dropped()));
        if (telemetry::FlightNamesDropped() > 0) {
          std::printf("flight: WARNING %llu intern calls degraded to \"?\""
                      " (name table full at %zu)\n",
                      static_cast<unsigned long long>(
                          telemetry::FlightNamesDropped()),
                      telemetry::kMaxFlightNames);
        }
      }
    }
    if (!slowdump_out_.empty()) {
      telemetry::SlowFrameCapture& capture =
          telemetry::GlobalSlowFrameCapture();
      if (Status s = capture.WriteDump(slowdump_out_); !s.ok()) {
        std::fprintf(stderr, "slowdump: %s\n", s.ToString().c_str());
        ok = false;
      } else {
        std::printf("\nslowdump: wrote %s (%zu captures over %llu frames;"
                    " inspect with hdov_inspect --slowdump)\n",
                    slowdump_out_.c_str(), capture.captures(),
                    static_cast<unsigned long long>(capture.frames_seen()));
      }
    }
    return ok;
  }

 private:
  std::string telemetry_out_;
  std::string json_out_;
  std::string trace_out_;
  std::string flight_out_;
  std::string slowdump_out_;
  uint32_t metrics_every_ = 0;
  uint64_t frames_seen_ = 0;
  std::unique_ptr<telemetry::ExpositionLog> metrics_log_;
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  telemetry::BenchReport report_;
  bool written_ = false;
};

// The shared figure/table emitter: prints an aligned stdout table AND
// appends each row to the named report series, so the human-readable and
// machine-readable outputs cannot drift apart. Columns default to
// simulated (deterministic, compared at zero tolerance by
// bench_compare); mark wall-clock columns `wall` so the comparison
// applies a noise tolerance instead.
class SeriesTable {
 public:
  struct Col {
    std::string header;
    int width = 12;
    int precision = 2;
    bool wall = false;
  };

  SeriesTable(telemetry::BenchReport* report, const std::string& name,
              const std::string& label_header, int label_width,
              std::vector<Col> cols)
      : label_width_(label_width), cols_(std::move(cols)) {
    if (report != nullptr) {
      std::vector<telemetry::SeriesColumn> columns;
      columns.reserve(cols_.size());
      for (const Col& c : cols_) {
        columns.push_back(telemetry::SeriesColumn{c.header, c.wall});
      }
      series_ = report->AddSeries(name, std::move(columns));
    }
    std::printf("%-*s", label_width_, label_header.c_str());
    for (const Col& c : cols_) {
      std::printf(" %*s", c.width, c.header.c_str());
    }
    std::printf("\n");
  }

  void Row(const std::string& label, std::initializer_list<double> values) {
    if (values.size() != cols_.size()) {
      std::fprintf(stderr, "SeriesTable: %zu values for %zu columns\n",
                   values.size(), cols_.size());
      std::abort();
    }
    std::printf("%-*s", label_width_, label.c_str());
    size_t i = 0;
    for (double v : values) {
      std::printf(" %*.*f", cols_[i].width, cols_[i].precision, v);
      ++i;
    }
    std::printf("\n");
    if (series_ != nullptr) {
      series_->rows.push_back(telemetry::SeriesRow{label, values});
    }
  }

 private:
  telemetry::ReportSeries* series_ = nullptr;
  int label_width_;
  std::vector<Col> cols_;
};

}  // namespace hdov::bench

#endif  // HDOV_BENCH_BENCH_UTIL_H_
