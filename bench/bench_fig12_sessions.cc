// Figure 12 reproduction plus the many-users serving benchmark.
//
// Part 1 (Figures 12a,b): average per-query search time and average I/Os
// for three recorded walkthrough sessions with different motion patterns
// — session 1: normal walk; session 2: turning left/right; session 3:
// moving back and forward — played on both VISUAL and REVIEW. Expected
// shape: VISUAL queries are much faster and cheaper than REVIEW's
// spatial queries in every session.
//
// Part 2 (server): N concurrent users served by a WalkthroughServer from
// one file-backed world snapshot. Reports throughput (sessions/s,
// frames/s) and tail latency (p95 frame wall time) against the user
// count, plus the shared-cache hit rate. Simulated per-session columns
// stay deterministic — each session's billing is bit-identical to solo
// playback — while wall-clock and cache columns are marked `wall` for
// the tolerant comparison path. A locality sub-experiment contrasts
// clustered users (identical paths, maximal same-cell batching) with
// spread users (independent paths) to show shared-cell locality driving
// the cache hit rate.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "persist/snapshot.h"
#include "server/walkthrough_server.h"
#include "walkthrough/experiment_testbed.h"
#include "walkthrough/frame_loop.h"
#include "walkthrough/review_system.h"
#include "walkthrough/visual_system.h"

namespace hdov::bench {
namespace {

constexpr MotionPattern kPatterns[] = {MotionPattern::kNormalWalk,
                                       MotionPattern::kTurnLeftRight,
                                       MotionPattern::kBackForward};

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  return samples[static_cast<size_t>(rank + 0.5)];
}

// N user sessions over the world. Clustered users all walk the exact
// same path (maximal shared-cell locality); spread users get distinct
// seeds and alternating motion patterns. Names are made unique so
// per-session telemetry rollups do not collide.
std::vector<Session> MakeUserSessions(size_t n, const Aabb& bounds,
                                      const SessionOptions& base,
                                      bool clustered) {
  std::vector<Session> users;
  users.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SessionOptions opt = base;
    if (!clustered) {
      opt.seed = base.seed + 101 * i;
    }
    const MotionPattern pattern =
        clustered ? kPatterns[0] : kPatterns[i % 3];
    Session session = RecordSession(pattern, bounds, opt);
    std::string name = "u";
    name += std::to_string(i);
    name += '.';
    name += session.name;
    session.name = std::move(name);
    users.push_back(std::move(session));
  }
  return users;
}

struct ServerRunDigest {
  ServerRunStats stats;
  double mean_sim_ms = 0.0;  // Mean over sessions of avg_frame_time_ms.
  double mean_sim_io = 0.0;  // Mean over sessions of avg_io_pages.
  double p95_wall_ms = 0.0;  // Over every frame of every session.
  double cache_hit_pct = 0.0;  // Store+tree shared caches combined.
};

bool RunServer(const ServerOptions& options,
               const std::vector<Session>& users, ServerRunDigest* out) {
  Result<std::unique_ptr<WalkthroughServer>> server =
      WalkthroughServer::Open(options);
  if (!server.ok()) {
    std::fprintf(stderr, "server open: %s\n",
                 server.status().ToString().c_str());
    return false;
  }
  for (const Session& user : users) {
    if (Status s = (*server)->AddSession(user); !s.ok()) {
      std::fprintf(stderr, "add session: %s\n", s.ToString().c_str());
      return false;
    }
  }
  Result<ServerRunStats> stats = (*server)->Play();
  if (!stats.ok()) {
    std::fprintf(stderr, "server play: %s\n",
                 stats.status().ToString().c_str());
    return false;
  }
  out->stats = *std::move(stats);

  std::vector<double> walls;
  for (const ServerSessionRecord& record : out->stats.sessions) {
    out->mean_sim_ms += record.summary.avg_frame_time_ms;
    out->mean_sim_io += record.summary.avg_io_pages;
    walls.insert(walls.end(), record.frame_wall_ms.begin(),
                 record.frame_wall_ms.end());
  }
  const double n = static_cast<double>(out->stats.sessions.size());
  out->mean_sim_ms /= n;
  out->mean_sim_io /= n;
  out->p95_wall_ms = Percentile(std::move(walls), 0.95);
  const uint64_t hits =
      out->stats.store_cache.hits + out->stats.tree_cache.hits;
  const uint64_t lookups = hits + out->stats.store_cache.misses +
                           out->stats.tree_cache.misses;
  out->cache_hit_pct =
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(hits) /
                         static_cast<double>(lookups);
  return true;
}

int Run(const BenchArgs& args) {
  TelemetryScope telemetry(args, "bench_fig12_sessions");
  telemetry.Header("Figure 12: search performance across walkthrough"
                   " sessions, plus many-users serving",
                   "Figures 12(a,b)");
  Testbed bed = BuildTestbed(DefaultTestbedOptions(), telemetry.report());
  PrintTestbedSummary(bed);

  VisualOptions vopt = DefaultVisualOptions();
  vopt.eta = 0.001;
  // This experiment measures raw per-query search cost; prefetching is a
  // frame-smoothing optimization that would only add speculative I/O here.
  vopt.prefetch_models_per_frame = 0;
  Result<std::unique_ptr<VisualSystem>> visual =
      MakeVisualSystem(bed, vopt);
  ReviewOptions ropt;
  ropt.query_box_size = 400.0;
  ropt.cache_distance = 600.0;
  Result<std::unique_ptr<ReviewSystem>> review =
      ReviewSystem::Create(&bed.scene, ropt);
  if (!visual.ok() || !review.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  telemetry.Attach(visual->get(), "visual");
  telemetry.Attach(review->get(), "review");

  SessionOptions sopt;
  sopt.num_frames = LargeScale() ? 1200 : 400;

  SeriesTable table(telemetry.report(), "fig12.sessions", "session", 18,
                    {SeriesTable::Col{"VISUAL ms/q", 14, 3},
                     SeriesTable::Col{"REVIEW ms/q", 14, 3},
                     SeriesTable::Col{"VISUAL I/Os", 12, 2},
                     SeriesTable::Col{"REVIEW I/Os", 12, 2}});
  for (int i = 0; i < 3; ++i) {
    Session session = RecordSession(kPatterns[i], bed.scene.bounds(), sopt);
    WallTimer playback;
    Result<SessionSummary> vis = PlaySession(visual->get(), session);
    Result<SessionSummary> rev = PlaySession(review->get(), session);
    if (!vis.ok() || !rev.ok()) {
      std::fprintf(stderr, "playback failed\n");
      return 1;
    }
    telemetry.report()->RecordTiming("session.play", playback.ElapsedMs());
    table.Row(session.name,
              {vis->avg_query_time_ms, rev->avg_query_time_ms,
               vis->avg_io_pages, rev->avg_io_pages});
  }
  std::printf("\nshape check: VISUAL's visibility queries beat REVIEW's\n"
              "spatial queries on both time and I/O in all three motion\n"
              "patterns.\n");

  // ---- Part 2: many users served from one file-backed snapshot. ----
  //
  // With --db the committed snapshot is served directly; otherwise a
  // temporary one is written from the in-memory testbed and removed at
  // the end.
  std::string snapshot_path = BenchDbPath();
  bool temp_snapshot = false;
  if (snapshot_path.empty()) {
    snapshot_path = "bench_fig12_server.world";
    temp_snapshot = true;
    WallTimer persist;
    Result<std::unique_ptr<SnapshotWriter>> writer =
        SnapshotWriter::Create(snapshot_path, vopt.disk.page_size);
    if (!writer.ok() ||
        !WriteWorldSnapshot(writer->get(), bed, vopt).ok() ||
        !(*writer)->Commit().ok()) {
      std::fprintf(stderr, "snapshot write failed\n");
      return 1;
    }
    telemetry.report()->RecordTiming("server.snapshot_write",
                                     persist.ElapsedMs());
  }

  ServerOptions sv;
  sv.snapshot_path = snapshot_path;
  sv.visual = vopt;
  sv.workers = BenchThreads() > 1 ? BenchThreads() : 4;

  SessionOptions server_sopt = sopt;
  server_sopt.num_frames = LargeScale() ? 600 : 160;

  std::vector<size_t> user_counts = {1, 2, 4, 8};
  if (LargeScale()) {
    user_counts.push_back(16);
  }

  std::printf("\nmany users, one snapshot (%u workers, %zu-page shared"
              " cache):\n",
              sv.workers, sv.shared_cache_pages);
  SeriesTable users_table(
      telemetry.report(), "fig12.server.users", "users", 8,
      {SeriesTable::Col{"frames", 8, 0},
       SeriesTable::Col{"sim ms/f", 10, 3},
       SeriesTable::Col{"sim I/O/f", 11, 2},
       SeriesTable::Col{"batched", 9, 0},
       SeriesTable::Col{"sess/s", 9, 2, /*wall=*/true},
       SeriesTable::Col{"frames/s", 10, 1, /*wall=*/true},
       SeriesTable::Col{"p95 ms", 9, 3, /*wall=*/true},
       SeriesTable::Col{"hit %", 7, 1, /*wall=*/true}});
  // Scheduler latency attribution: where each frame's wall time went —
  // waiting in the round queue vs executing. Every column is wall-clock
  // (real time, tolerant comparison); the series name carries ".wall."
  // so refreshed baselines treat its values the same way.
  SeriesTable latency_table(
      telemetry.report(), "fig12.server.wall.latency", "users", 8,
      {SeriesTable::Col{"q p50 ms", 10, 3, /*wall=*/true},
       SeriesTable::Col{"q p95 ms", 10, 3, /*wall=*/true},
       SeriesTable::Col{"q p99 ms", 10, 3, /*wall=*/true},
       SeriesTable::Col{"s p50 ms", 10, 3, /*wall=*/true},
       SeriesTable::Col{"s p95 ms", 10, 3, /*wall=*/true},
       SeriesTable::Col{"s p99 ms", 10, 3, /*wall=*/true}});
  for (size_t n : user_counts) {
    const std::vector<Session> users = MakeUserSessions(
        n, bed.scene.bounds(), server_sopt, /*clustered=*/false);
    ServerRunDigest digest;
    if (!RunServer(sv, users, &digest)) {
      return 1;
    }
    telemetry.report()->RecordTiming(
        "server.u" + std::to_string(n) + ".play", digest.stats.wall_ms);
    const double secs = digest.stats.wall_ms / 1000.0;
    users_table.Row(
        std::to_string(n),
        {static_cast<double>(digest.stats.total_frames),
         digest.mean_sim_ms, digest.mean_sim_io,
         static_cast<double>(digest.stats.batched_frames),
         secs > 0.0 ? static_cast<double>(n) / secs : 0.0,
         secs > 0.0 ? static_cast<double>(digest.stats.total_frames) / secs
                    : 0.0,
         digest.p95_wall_ms, digest.cache_hit_pct});
    std::vector<double> queues;
    std::vector<double> services;
    for (const ServerSessionRecord& record : digest.stats.sessions) {
      queues.insert(queues.end(), record.frame_queue_wait_ms.begin(),
                    record.frame_queue_wait_ms.end());
      services.insert(services.end(), record.frame_wall_ms.begin(),
                      record.frame_wall_ms.end());
    }
    latency_table.Row(std::to_string(n),
                      {WallPercentile(queues, 0.50),
                       WallPercentile(queues, 0.95),
                       WallPercentile(queues, 0.99),
                       WallPercentile(services, 0.50),
                       WallPercentile(services, 0.95),
                       WallPercentile(services, 0.99)});
    // Roll the largest fleet's per-session summaries (and the scheduler
    // counters) into the metrics registry — all deterministic values, so
    // they ride the zero-tolerance comparison path. The wall-latency
    // gauges land under server.wall.* and get the tolerant path.
    if (n == user_counts.back() && telemetry.on()) {
      WalkthroughServer::RollupInto(digest.stats,
                                    &telemetry.get()->metrics(), "server");
      WalkthroughServer::RollupWallLatencyInto(
          digest.stats, &telemetry.get()->metrics(), "server");
    }
  }

  // Locality: identical paths share every V-page fetch; spread paths
  // only overlap where the world makes them.
  const size_t locality_users = user_counts.back();
  std::printf("\ncache hit rate vs shared-cell locality (%zu users):\n",
              locality_users);
  SeriesTable locality_table(
      telemetry.report(), "fig12.server.locality", "fleet", 12,
      {SeriesTable::Col{"sim I/O/f", 11, 2},
       SeriesTable::Col{"batched", 9, 0},
       SeriesTable::Col{"hit %", 7, 1, /*wall=*/true}});
  for (const bool clustered : {true, false}) {
    const std::vector<Session> users =
        MakeUserSessions(locality_users, bed.scene.bounds(), server_sopt,
                         clustered);
    ServerRunDigest digest;
    if (!RunServer(sv, users, &digest)) {
      return 1;
    }
    locality_table.Row(clustered ? "clustered" : "spread",
                       {digest.mean_sim_io,
                        static_cast<double>(digest.stats.batched_frames),
                        digest.cache_hit_pct});
  }

  if (temp_snapshot) {
    std::remove(snapshot_path.c_str());
    std::remove((snapshot_path + ".tmp").c_str());
  }
  std::printf("\nshape check: per-user simulated cost is flat in the user\n"
              "count (sessions bill independently), while clustered users\n"
              "batch more frames and hit the shared cache more often than\n"
              "spread users.\n");
  return telemetry.Write() ? 0 : 1;
}

}  // namespace
}  // namespace hdov::bench

int main(int argc, char** argv) {
  return hdov::bench::Run(hdov::bench::ParseBenchArgs(argc, argv));
}
