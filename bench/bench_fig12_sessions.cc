// Figure 12 reproduction: average per-query search time (a) and average
// I/Os (b) for three recorded walkthrough sessions with different motion
// patterns — session 1: normal walk; session 2: turning left/right;
// session 3: moving back and forward — played on both VISUAL and REVIEW.
// Expected shape: VISUAL queries are much faster and cheaper than
// REVIEW's spatial queries in every session.

#include <cstdio>

#include "bench_util.h"
#include "walkthrough/frame_loop.h"
#include "walkthrough/review_system.h"
#include "walkthrough/visual_system.h"

namespace hdov::bench {
namespace {

int Run(const BenchArgs& args) {
  TelemetryScope telemetry(args, "bench_fig12_sessions");
  telemetry.Header("Figure 12: search performance across walkthrough"
                   " sessions",
                   "Figures 12(a,b)");
  Testbed bed = BuildTestbed(DefaultTestbedOptions(), telemetry.report());
  PrintTestbedSummary(bed);

  VisualOptions vopt = DefaultVisualOptions();
  vopt.eta = 0.001;
  // This experiment measures raw per-query search cost; prefetching is a
  // frame-smoothing optimization that would only add speculative I/O here.
  vopt.prefetch_models_per_frame = 0;
  Result<std::unique_ptr<VisualSystem>> visual =
      MakeVisualSystem(bed, vopt);
  ReviewOptions ropt;
  ropt.query_box_size = 400.0;
  ropt.cache_distance = 600.0;
  Result<std::unique_ptr<ReviewSystem>> review =
      ReviewSystem::Create(&bed.scene, ropt);
  if (!visual.ok() || !review.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  telemetry.Attach(visual->get(), "visual");
  telemetry.Attach(review->get(), "review");

  SessionOptions sopt;
  sopt.num_frames = LargeScale() ? 1200 : 400;
  const MotionPattern patterns[] = {MotionPattern::kNormalWalk,
                                    MotionPattern::kTurnLeftRight,
                                    MotionPattern::kBackForward};

  SeriesTable table(telemetry.report(), "fig12.sessions", "session", 18,
                    {SeriesTable::Col{"VISUAL ms/q", 14, 3},
                     SeriesTable::Col{"REVIEW ms/q", 14, 3},
                     SeriesTable::Col{"VISUAL I/Os", 12, 2},
                     SeriesTable::Col{"REVIEW I/Os", 12, 2}});
  for (int i = 0; i < 3; ++i) {
    Session session = RecordSession(patterns[i], bed.scene.bounds(), sopt);
    WallTimer playback;
    Result<SessionSummary> vis = PlaySession(visual->get(), session);
    Result<SessionSummary> rev = PlaySession(review->get(), session);
    if (!vis.ok() || !rev.ok()) {
      std::fprintf(stderr, "playback failed\n");
      return 1;
    }
    telemetry.report()->RecordTiming("session.play", playback.ElapsedMs());
    table.Row(session.name,
              {vis->avg_query_time_ms, rev->avg_query_time_ms,
               vis->avg_io_pages, rev->avg_io_pages});
  }
  std::printf("\nshape check: VISUAL's visibility queries beat REVIEW's\n"
              "spatial queries on both time and I/O in all three motion\n"
              "patterns.\n");
  return telemetry.Write() ? 0 : 1;
}

}  // namespace
}  // namespace hdov::bench

int main(int argc, char** argv) {
  return hdov::bench::Run(hdov::bench::ParseBenchArgs(argc, argv));
}
