// Figure 11 reproduction (quantitative substitute for the paper's
// screenshots): visual fidelity of (a) the original models, (b) REVIEW
// with 200 m query boxes, and (c) VISUAL with eta = 0.001, scored by the
// DoV-weighted fidelity metric (coverage / detail / combined; see
// walkthrough/fidelity.h). Expected shape: REVIEW loses far visible
// objects (coverage < 1); VISUAL keeps full coverage with only a mild
// detail loss even at eta = 0.001.

#include <cstdio>

#include "bench_util.h"
#include "hdov/builder.h"
#include "walkthrough/fidelity.h"
#include "walkthrough/review_system.h"
#include "walkthrough/visual_system.h"

namespace hdov::bench {
namespace {

int Run(const BenchArgs& args) {
  TelemetryScope telemetry(args, "bench_fig11_fidelity");
  telemetry.Header("Figure 11: visual fidelity comparison", "Figure 11");
  Testbed bed = BuildTestbed(DefaultTestbedOptions(), telemetry.report());
  PrintTestbedSummary(bed);

  VisualOptions vopt = DefaultVisualOptions();
  vopt.eta = 0.001;
  Result<std::unique_ptr<VisualSystem>> visual =
      MakeVisualSystem(bed, vopt);
  ReviewOptions ropt;
  ropt.query_box_size = 200.0;
  ropt.cache_distance = 300.0;
  Result<std::unique_ptr<ReviewSystem>> review =
      ReviewSystem::Create(&bed.scene, ropt);
  if (!visual.ok() || !review.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  telemetry.Attach(visual->get(), "visual");
  telemetry.Attach(review->get(), "review");
  // Post-hoc fidelity annotation of the frame record just emitted.
  auto annotate = [&](const FidelityScore& score) {
    if (telemetry.on() && telemetry.get()->last_frame() != nullptr) {
      telemetry.get()->last_frame()->fidelity = score.combined;
    }
  };

  FidelityEvaluator eval(&bed.scene, &(*visual)->tree());

  FidelityScore original;
  FidelityScore review_score;
  FidelityScore visual_score;
  uint64_t review_tris = 0;
  uint64_t visual_tris = 0;
  uint64_t original_tris = 0;
  const uint32_t n = bed.grid.num_cells();
  for (CellId c = 0; c < n; ++c) {
    const Vec3 p = bed.grid.CellCenter(c);
    const Viewpoint vp{p, Vec3(1, 0, 0)};
    const CellVisibility& truth = bed.table.cell(c);

    FidelityScore o = eval.OriginalScore(truth);
    original.coverage += o.coverage;
    original.detail += o.detail;
    original.combined += o.combined;
    for (size_t i = 0; i < truth.ids.size(); ++i) {
      original_tris +=
          bed.scene.object(truth.ids[i]).lods.finest().triangle_count;
    }

    FrameResult frame;
    (*review)->ResetRuntime();
    if (!(*review)->RenderFrame(vp, &frame).ok()) {
      return 1;
    }
    FidelityScore r = eval.Evaluate(truth, (*review)->last_result());
    annotate(r);
    review_score.coverage += r.coverage;
    review_score.detail += r.detail;
    review_score.combined += r.combined;
    review_tris += frame.rendered_triangles;

    (*visual)->ResetRuntime();
    if (!(*visual)->RenderFrame(vp, &frame).ok()) {
      return 1;
    }
    FidelityScore v = eval.Evaluate(truth, (*visual)->last_result());
    annotate(v);
    visual_score.coverage += v.coverage;
    visual_score.detail += v.detail;
    visual_score.combined += v.combined;
    visual_tris += frame.rendered_triangles;
  }

  SeriesTable table(telemetry.report(), "fig11.fidelity", "configuration",
                    28,
                    {SeriesTable::Col{"coverage", 9, 3},
                     SeriesTable::Col{"detail", 8, 3},
                     SeriesTable::Col{"combined", 9, 3},
                     SeriesTable::Col{"tris/frame", 14, 0}});
  auto add_row = [&](const char* label, const FidelityScore& s,
                     uint64_t tris) {
    table.Row(label, {s.coverage / n, s.detail / n, s.combined / n,
                      static_cast<double>(tris) / n});
  };
  add_row("(a) original models", original, original_tris);
  add_row("(b) REVIEW, 200m boxes", review_score, review_tris);
  add_row("(c) VISUAL, eta=0.001", visual_score, visual_tris);

  std::printf("\nshape checks: REVIEW coverage < 1 (far objects lost to the"
              " spatial query box);\nVISUAL coverage = 1 with combined"
              " fidelity close to the original at a fraction of the"
              " triangles.\n");

  // Second panel: a small full-geometry city — real meshes, QEM-built
  // object and internal LoDs, mesh-accurate occlusion — to confirm the
  // fidelity story does not depend on the proxy substitution.
  std::printf("\n--- full-geometry panel (real meshes, QEM LoDs) ---\n");
  CityOptions copt;
  copt.mode = GeometryMode::kFull;
  copt.blocks_x = 3;
  copt.blocks_y = 3;
  copt.facade_columns = 5;
  copt.facade_rows = 8;
  copt.bunny_subdivisions = 3;
  Result<Scene> full_city = GenerateCity(copt);
  if (!full_city.ok()) {
    std::fprintf(stderr, "%s\n", full_city.status().ToString().c_str());
    return 1;
  }
  CellGridOptions ggopt;
  ggopt.cells_x = 3;
  ggopt.cells_y = 3;
  Result<CellGrid> fgrid = CellGrid::Build(full_city->bounds(), ggopt);
  PrecomputeOptions fpopt;
  fpopt.dov.cubemap.face_resolution = 48;
  fpopt.dov.geometry = OccluderGeometry::kMeshLod;
  fpopt.samples_per_cell = 1;
  fpopt.threads = BenchThreads();
  Result<VisibilityTable> ftable =
      PrecomputeVisibility(*full_city, *fgrid, fpopt);
  if (!fgrid.ok() || !ftable.ok()) {
    return 1;
  }

  VisualOptions fvopt = DefaultVisualOptions();
  fvopt.eta = 0.002;
  fvopt.build.build_internal_meshes = true;
  fvopt.prefetch_models_per_frame = 0;
  Result<std::unique_ptr<VisualSystem>> fvisual =
      VisualSystem::Create(&*full_city, &*fgrid, &*ftable, fvopt);
  if (!fvisual.ok()) {
    std::fprintf(stderr, "%s\n", fvisual.status().ToString().c_str());
    return 1;
  }
  telemetry.Attach(fvisual->get(), "visual.full_geometry");
  FidelityEvaluator feval(&*full_city, &(*fvisual)->tree());
  FidelityScore fsum;
  uint64_t ftris = 0;
  uint64_t forig = 0;
  for (CellId c = 0; c < fgrid->num_cells(); ++c) {
    FrameResult frame;
    (*fvisual)->ResetRuntime();
    if (!(*fvisual)
             ->RenderFrame({fgrid->CellCenter(c), Vec3(1, 0, 0)}, &frame)
             .ok()) {
      return 1;
    }
    FidelityScore score =
        feval.Evaluate(ftable->cell(c), (*fvisual)->last_result());
    annotate(score);
    fsum.coverage += score.coverage;
    fsum.detail += score.detail;
    fsum.combined += score.combined;
    ftris += frame.rendered_triangles;
    for (size_t i = 0; i < ftable->cell(c).ids.size(); ++i) {
      forig += full_city->object(ftable->cell(c).ids[i])
                   .lods.finest()
                   .triangle_count;
    }
  }
  const double fn = fgrid->num_cells();
  std::printf("%s\n", full_city->Summary().c_str());
  SeriesTable ftableout(telemetry.report(), "fig11.full_geometry",
                       "configuration", 28,
                       {SeriesTable::Col{"coverage", 9, 3},
                        SeriesTable::Col{"detail", 8, 3},
                        SeriesTable::Col{"combined", 9, 3},
                        SeriesTable::Col{"tris/frame", 14, 0},
                        SeriesTable::Col{"orig tris/frame", 16, 0}});
  ftableout.Row("VISUAL eta=0.002 (meshes)",
                {fsum.coverage / fn, fsum.detail / fn, fsum.combined / fn,
                 static_cast<double>(ftris) / fn,
                 static_cast<double>(forig) / fn});
  return telemetry.Write() ? 0 : 1;
}

}  // namespace
}  // namespace hdov::bench

int main(int argc, char** argv) {
  return hdov::bench::Run(hdov::bench::ParseBenchArgs(argc, argv));
}
