// Table 3 reproduction: average frame time and frame-time variance of
// walkthrough session 1 across the paper's eta values, plus the REVIEW row
// (400 m boxes, the comparable-fidelity setting). Also reports the peak
// model memory of each configuration (paper §5.4: VISUAL 28 MB vs REVIEW
// 62 MB). Expected shape: frame time and variance fall as eta grows;
// REVIEW is far slower and choppier; VISUAL uses much less memory.

#include <cstdio>

#include "bench_util.h"
#include "walkthrough/frame_loop.h"
#include "walkthrough/review_system.h"
#include "walkthrough/visual_system.h"

namespace hdov::bench {
namespace {

int Run(const BenchArgs& args) {
  TelemetryScope telemetry(args, "bench_table3_frame_stats");
  telemetry.Header("Table 3: frame time statistics vs eta", "Table 3");
  Testbed bed = BuildTestbed(DefaultTestbedOptions(), telemetry.report());
  PrintTestbedSummary(bed);

  SessionOptions sopt;
  sopt.num_frames = LargeScale() ? 1500 : 500;
  Session session =
      RecordSession(MotionPattern::kNormalWalk, bed.scene.bounds(), sopt);

  VisualOptions vopt = DefaultVisualOptions();
  Result<std::unique_ptr<VisualSystem>> visual =
      MakeVisualSystem(bed, vopt);
  if (!visual.ok()) {
    std::fprintf(stderr, "%s\n", visual.status().ToString().c_str());
    return 1;
  }
  telemetry.Attach(visual->get(), "visual");

  const double etas[] = {0.0,    0.00005, 0.0001, 0.0002, 0.0003,
                         0.0005, 0.001,   0.002,  0.004};
  SeriesTable table(telemetry.report(), "table3.frame_stats", "eta", 10,
                    {SeriesTable::Col{"Avg Frame Time(ms)", 20, 2},
                     SeriesTable::Col{"Variance of Frame Time", 24, 2},
                     SeriesTable::Col{"peak mem(MB)", 14, 2}});
  double last_avg = 0.0;
  for (double eta : etas) {
    (*visual)->set_eta(eta);
    WallTimer playback;
    Result<SessionSummary> summary = PlaySession(visual->get(), session);
    if (!summary.ok()) {
      std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
      return 1;
    }
    telemetry.report()->RecordTiming("session.play", playback.ElapsedMs());
    char label[32];
    std::snprintf(label, sizeof(label), "%.5f", eta);
    table.Row(label, {summary->avg_frame_time_ms, summary->var_frame_time,
                      MB(summary->max_resident_bytes)});
    last_avg = summary->avg_frame_time_ms;
  }

  ReviewOptions ropt;
  ropt.query_box_size = 400.0;
  ropt.cache_distance = 600.0;
  Result<std::unique_ptr<ReviewSystem>> review =
      ReviewSystem::Create(&bed.scene, ropt);
  if (!review.ok()) {
    std::fprintf(stderr, "%s\n", review.status().ToString().c_str());
    return 1;
  }
  telemetry.Attach(review->get(), "review");
  Result<SessionSummary> rev = PlaySession(review->get(), session);
  if (!rev.ok()) {
    return 1;
  }
  table.Row("REVIEW", {rev->avg_frame_time_ms, rev->var_frame_time,
                       MB(rev->max_resident_bytes)});

  std::printf("\nshape checks: frame time and variance decrease with eta;\n"
              "REVIEW is slower than every VISUAL row (%.1fx vs eta=0.004)\n"
              "and needs more model memory (paper: 62 MB vs 28 MB).\n",
              rev->avg_frame_time_ms / last_avg);
  return telemetry.Write() ? 0 : 1;
}

}  // namespace
}  // namespace hdov::bench

int main(int argc, char** argv) {
  return hdov::bench::Run(hdov::bench::ParseBenchArgs(argc, argv));
}
