// Figure 9 reproduction: scalability of the visibility query over dataset
// sizes from 400 MB to 1.6 GB (logical model bytes). Reports (a) average
// search time and (b) average I/Os per query, counting only the HDoV-tree
// traversal (tree nodes + V-pages), excluding object retrieval — exactly
// the paper's methodology ("excludes the cost to retrieve the objects").
// Expected shape: both metrics grow only marginally with dataset size.

#include <cstdio>

#include "bench_util.h"
#include "walkthrough/visual_system.h"

namespace hdov::bench {
namespace {

int Run(const BenchArgs& args) {
  TelemetryScope telemetry(args, "bench_fig9_scalability");
  telemetry.Header("Figure 9: visibility-query scalability with dataset size",
                   "Figures 9(a,b)");

  const uint64_t kMB = 1ull << 20;
  const uint64_t targets[] = {400 * kMB, 800 * kMB, 1200 * kMB, 1600 * kMB};
  const size_t kQueries = 1000;  // The paper uses 1000 queries.

  SeriesTable out(telemetry.report(), "fig9.scalability", "dataset(MB)", 12,
                  {SeriesTable::Col{"objects", 10, 0},
                   SeriesTable::Col{"nodes", 10, 0},
                   SeriesTable::Col{"search(ms)", 14, 3},
                   SeriesTable::Col{"I/Os", 12, 2}});
  for (uint64_t target : targets) {
    WallTimer step;
    CityOptions copt = CityOptionsForTargetBytes(target);
    Result<Scene> scene = GenerateCity(copt);
    if (!scene.ok()) {
      std::fprintf(stderr, "%s\n", scene.status().ToString().c_str());
      return 1;
    }
    CellGridOptions gopt;
    gopt.cells_x = LargeScale() ? 16 : 10;
    gopt.cells_y = gopt.cells_x;
    Result<CellGrid> grid = CellGrid::Build(scene->bounds(), gopt);
    PrecomputeOptions popt;
    popt.dov.cubemap.face_resolution = 16;
    popt.samples_per_cell = 1;
    popt.threads = BenchThreads();
    Result<VisibilityTable> table = PrecomputeVisibility(*scene, *grid, popt);
    if (!grid.ok() || !table.ok()) {
      std::fprintf(stderr, "precompute failed\n");
      return 1;
    }

    VisualOptions vopt = DefaultVisualOptions();
    vopt.eta = 0.001;
    Result<std::unique_ptr<VisualSystem>> visual =
        VisualSystem::Create(&*scene, &*grid, &*table, vopt);
    if (!visual.ok()) {
      std::fprintf(stderr, "%s\n", visual.status().ToString().c_str());
      return 1;
    }

    // The system dies with this loop iteration, so its registry views are
    // gone from the final snapshot; the per-query frame records survive.
    telemetry.Attach(visual->get(),
                     "visual." + std::to_string(target / kMB) + "mb");

    std::vector<Vec3> viewpoints =
        RandomViewpoints(scene->bounds(), kQueries, 7);
    (*visual)->ResetIoStats();
    std::vector<RetrievedLod> result;
    for (const Vec3& p : viewpoints) {
      // Traversal only: no model fetches (paper Fig. 9 methodology).
      if (Status st = (*visual)->Query(p, /*fetch_models=*/false, &result,
                                       nullptr);
          !st.ok()) {
        std::fprintf(stderr, "query: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    const double ms = (*visual)->clock().NowMillis() / kQueries;
    const double ios =
        static_cast<double>((*visual)->TotalIoStats().page_reads) / kQueries;
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f",
                  MB(scene->TotalModelBytes()));
    out.Row(label, {static_cast<double>(scene->size()),
                    static_cast<double>((*visual)->tree().num_nodes()), ms,
                    ios});
    telemetry.report()->RecordTiming("dataset.step", step.ElapsedMs());
  }
  std::printf("\nshape check: search time and I/Os grow only marginally\n"
              "while the dataset quadruples (the traversal touches visible\n"
              "branches only, and N_vnode does not track N_node).\n");
  return telemetry.Write() ? 0 : 1;
}

}  // namespace
}  // namespace hdov::bench

int main(int argc, char** argv) {
  return hdov::bench::Run(hdov::bench::ParseBenchArgs(argc, argv));
}
