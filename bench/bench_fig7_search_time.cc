// Figure 7 reproduction: average visibility-query search time (simulated
// disk time, model loading included) as the DoV threshold eta varies, for
// the three HDoV storage schemes and the naive (cell, list-of-objects)
// method. Expected shape: all HDoV curves fall steeply as eta grows;
// eta = 0 costs about the same as naive; horizontal is the slowest scheme
// (scattered V-pages = extra seeks); indexed-vertical is marginally
// cheaper than vertical (lighter cell flips).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "walkthrough/naive_system.h"
#include "walkthrough/visual_system.h"

namespace hdov::bench {
namespace {

int Run(const BenchArgs& args) {
  TelemetryScope telemetry(args, "bench_fig7_search_time");
  telemetry.Header("Figure 7: search time vs DoV threshold (eta)",
                   "Figure 7");
  Testbed bed = BuildTestbed(DefaultTestbedOptions(), telemetry.report());
  PrintTestbedSummary(bed);

  const size_t kQueries = LargeScale() ? 10000 : 2000;
  std::vector<Vec3> viewpoints =
      RandomViewpoints(bed.scene.bounds(), kQueries, 99);

  const StorageScheme schemes[3] = {StorageScheme::kHorizontal,
                                    StorageScheme::kVertical,
                                    StorageScheme::kIndexedVertical};
  std::unique_ptr<VisualSystem> systems[3];
  for (int s = 0; s < 3; ++s) {
    VisualOptions vopt = DefaultVisualOptions();
    vopt.scheme = schemes[s];
    Result<std::unique_ptr<VisualSystem>> system =
        MakeVisualSystem(bed, vopt);
    if (!system.ok()) {
      std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
      return 1;
    }
    systems[s] = std::move(*system);
    telemetry.Attach(systems[s].get(),
                     "visual." + StorageSchemeName(schemes[s]));
  }
  Result<std::unique_ptr<NaiveSystem>> naive =
      NaiveSystem::Create(&bed.scene, &bed.grid, &bed.table, NaiveOptions());
  if (!naive.ok()) {
    std::fprintf(stderr, "%s\n", naive.status().ToString().c_str());
    return 1;
  }
  (*naive)->set_delta_enabled(false);
  telemetry.Attach(naive->get(), "naive");

  // Naive baseline: eta-independent.
  double naive_ms = 0.0;
  {
    (*naive)->ResetIoStats();
    std::vector<RetrievedLod> result;
    for (const Vec3& p : viewpoints) {
      if (Status s = (*naive)->Query(p, /*fetch_models=*/true, &result);
          !s.ok()) {
        std::fprintf(stderr, "naive: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    naive_ms = (*naive)->clock().NowMillis() / viewpoints.size();
  }

  const double etas[] = {0.0,   0.0005, 0.001, 0.002,
                         0.003, 0.004,  0.006, 0.008};
  std::printf("avg search time per query (simulated ms), %zu queries\n\n",
              viewpoints.size());
  SeriesTable table(telemetry.report(), "fig7.search_time", "eta", 8,
                    {SeriesTable::Col{"horizontal", 12, 3},
                     SeriesTable::Col{"vertical", 12, 3},
                     SeriesTable::Col{"indexed-vertical", 16, 3},
                     SeriesTable::Col{"naive", 12, 3}});
  char label[32];
  for (double eta : etas) {
    double ms[3] = {0, 0, 0};
    WallTimer sweep;
    for (int s = 0; s < 3; ++s) {
      systems[s]->set_eta(eta);
      systems[s]->ResetIoStats();
      std::vector<RetrievedLod> result;
      for (const Vec3& p : viewpoints) {
        if (Status st =
                systems[s]->Query(p, /*fetch_models=*/true, &result, nullptr);
            !st.ok()) {
          std::fprintf(stderr, "query: %s\n", st.ToString().c_str());
          return 1;
        }
      }
      ms[s] = systems[s]->clock().NowMillis() / viewpoints.size();
    }
    telemetry.report()->RecordTiming("sweep.eta", sweep.ElapsedMs());
    std::snprintf(label, sizeof(label), "%.4f", eta);
    table.Row(label, {ms[0], ms[1], ms[2], naive_ms});
  }
  std::printf("\nshape checks: curves fall with eta; horizontal slowest;\n"
              "indexed-vertical <= vertical; eta=0 ~ naive.\n");
  return telemetry.Write() ? 0 : 1;
}

}  // namespace
}  // namespace hdov::bench

int main(int argc, char** argv) {
  return hdov::bench::Run(hdov::bench::ParseBenchArgs(argc, argv));
}
