// Ablation experiments for the design choices DESIGN.md calls out, beyond
// the paper's own figures:
//  A. R-tree construction: Ang–Tan linear split (the paper's choice) vs
//     Guttman quadratic split vs STR bulk loading — node counts, build
//     cost and disk-query I/O on the same data.
//  B. Termination heuristic: the paper's Eq. 4 vs eta-only vs the
//     LoD-aware cost model — retrieved triangles and I/O per query.
//  C. Delta search & prefetching: frame-time average/variance/worst with
//     both off, delta only, and delta + prefetch.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "rtree/rtree.h"
#include "walkthrough/frame_loop.h"
#include "walkthrough/lodr_system.h"
#include "walkthrough/review_system.h"
#include "walkthrough/visual_system.h"

namespace hdov::bench {
namespace {

void AblationSplitStrategies(const Testbed& bed) {
  std::printf("--- A. R-tree construction strategies ---\n");
  std::printf("%-22s %8s %12s %16s\n", "strategy", "nodes", "build (ms)",
              "query I/O pages");

  std::vector<std::pair<Aabb, uint64_t>> entries;
  for (const Object& obj : bed.scene.objects()) {
    entries.emplace_back(obj.mbr, obj.id);
  }
  std::vector<Vec3> probes = RandomViewpoints(bed.scene.bounds(), 200, 5);

  auto evaluate = [&](const char* name, RTree tree, double build_ms) {
    PageDevice device;
    Result<PackedRTree> packed = PackedRTree::Pack(tree, &device);
    if (!packed.ok()) {
      return;
    }
    device.ResetStats();
    std::vector<uint64_t> ids;
    for (const Vec3& p : probes) {
      Aabb window(Vec3(p.x - 200, p.y - 200, bed.scene.bounds().min.z),
                  Vec3(p.x + 200, p.y + 200, bed.scene.bounds().max.z));
      (void)packed->WindowQuery(window, &ids);
    }
    std::printf("%-22s %8zu %12.2f %16.2f\n", name, tree.num_nodes(),
                build_ms,
                static_cast<double>(device.stats().page_reads) /
                    probes.size());
  };

  using Clock = std::chrono::steady_clock;
  {
    RTreeOptions opt;
    opt.max_entries = 16;
    opt.min_entries = 6;
    RTree tree(opt);
    auto t0 = Clock::now();
    for (const auto& [mbr, id] : entries) {
      (void)tree.Insert(mbr, id);
    }
    double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count();
    evaluate("insert + Ang-Tan", std::move(tree), ms);
  }
  {
    RTreeOptions opt;
    opt.max_entries = 16;
    opt.min_entries = 6;
    opt.split = SplitAlgorithm::kQuadratic;
    RTree tree(opt);
    auto t0 = Clock::now();
    for (const auto& [mbr, id] : entries) {
      (void)tree.Insert(mbr, id);
    }
    double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count();
    evaluate("insert + quadratic", std::move(tree), ms);
  }
  {
    RTreeOptions opt;
    opt.max_entries = 16;
    opt.min_entries = 6;
    auto t0 = Clock::now();
    Result<RTree> tree = RTree::BulkLoad(entries, opt);
    double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count();
    if (tree.ok()) {
      evaluate("STR bulk load", std::move(*tree), ms);
    }
  }
  std::printf("\n");
}

void AblationTerminationHeuristics(const Testbed& bed,
                                   TelemetryScope* telemetry) {
  std::printf("--- B. termination heuristics (per query, eta sweep) ---\n");
  std::printf("%8s | %22s | %22s | %22s\n", "eta", "Eq.4 tris / IO",
              "eta-only tris / IO", "cost-model tris / IO");

  std::vector<Vec3> probes = RandomViewpoints(bed.scene.bounds(), 500, 11);
  VisualOptions vopt = DefaultVisualOptions();
  vopt.prefetch_models_per_frame = 0;
  Result<std::unique_ptr<VisualSystem>> visual =
      VisualSystem::Create(&bed.scene, &bed.grid, &bed.table, vopt);
  if (!visual.ok()) {
    return;
  }
  telemetry->Attach(visual->get(), "ablation.termination");
  for (double eta : {0.001, 0.004, 0.016}) {
    std::printf("%8.4f |", eta);
    for (TerminationHeuristic heuristic :
         {TerminationHeuristic::kEq4, TerminationHeuristic::kNone,
          TerminationHeuristic::kCostModel}) {
      (*visual)->set_eta(eta);
      (*visual)->ResetIoStats();
      uint64_t triangles = 0;
      std::vector<RetrievedLod> result;
      for (const Vec3& p : probes) {
        (void)(*visual)->QueryWithHeuristic(p, heuristic, &result);
        for (const RetrievedLod& lod : result) {
          triangles += lod.triangle_count;
        }
      }
      std::printf(" %10.0f / %7.2f |",
                  static_cast<double>(triangles) / probes.size(),
                  static_cast<double>(
                      (*visual)->TotalIoStats().page_reads) /
                      probes.size());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void AblationDeltaAndPrefetch(const Testbed& bed,
                              TelemetryScope* telemetry) {
  std::printf("--- C. delta search and prefetching ---\n");
  std::printf("%-24s %12s %12s %12s\n", "configuration", "avg (ms)",
              "variance", "worst (ms)");
  Session session = RecordSession(MotionPattern::kNormalWalk,
                                  bed.scene.bounds(), SessionOptions{
                                      .num_frames = 400,
                                  });
  struct Config {
    const char* name;
    bool delta;
    size_t prefetch;
  };
  for (const Config& config :
       {Config{"no delta, no prefetch", false, 0},
        Config{"delta only", true, 0},
        Config{"delta + prefetch", true, 2}}) {
    VisualOptions vopt = DefaultVisualOptions();
    vopt.prefetch_models_per_frame = config.prefetch;
    Result<std::unique_ptr<VisualSystem>> visual =
        VisualSystem::Create(&bed.scene, &bed.grid, &bed.table, vopt);
    if (!visual.ok()) {
      return;
    }
    // Loop-scoped system: its registry views vanish with it, but the frame
    // records it emits stay in the snapshot.
    telemetry->Attach(visual->get(),
                      std::string("ablation.prefetch_") +
                          std::to_string(config.prefetch) +
                          (config.delta ? ".delta" : ".nodelta"));
    (*visual)->set_delta_enabled(config.delta);
    PlayOptions popt;
    popt.keep_frames = true;
    Result<SessionSummary> summary =
        PlaySession(visual->get(), session, popt);
    if (!summary.ok()) {
      return;
    }
    double worst = 0.0;
    for (size_t i = 1; i < summary->frames.size(); ++i) {
      worst = std::max(worst, summary->frames[i].frame_time_ms);
    }
    std::printf("%-24s %12.2f %12.2f %12.2f\n", config.name,
                summary->avg_frame_time_ms, summary->var_frame_time, worst);
  }
}

void AblationBaselinePanel(const Testbed& bed, TelemetryScope* telemetry) {
  std::printf("--- D. three-baseline panel (per session) ---\n");
  std::printf("LoD-R-tree is the related-work baseline the paper critiques"
              " in section 2:\nfast while the view holds steady, degrading"
              " on view changes.\n\n");
  std::printf("%-18s | %10s %10s %12s\n", "session", "system", "avg ms",
              "avg I/O");

  VisualOptions vopt = DefaultVisualOptions();
  vopt.eta = 0.001;
  Result<std::unique_ptr<VisualSystem>> visual =
      VisualSystem::Create(&bed.scene, &bed.grid, &bed.table, vopt);
  ReviewOptions ropt;
  ropt.query_box_size = 400.0;
  ropt.cache_distance = 600.0;
  Result<std::unique_ptr<ReviewSystem>> review =
      ReviewSystem::Create(&bed.scene, ropt);
  LodRTreeOptions lopt;
  lopt.frustum.far_dist = 400.0;
  lopt.rtree.max_entries = 16;
  lopt.rtree.min_entries = 6;
  Result<std::unique_ptr<LodRTreeSystem>> lodr =
      LodRTreeSystem::Create(&bed.scene, lopt);
  if (!visual.ok() || !review.ok() || !lodr.ok()) {
    return;
  }
  telemetry->Attach(visual->get(), "ablation.panel.visual");
  telemetry->Attach(review->get(), "ablation.panel.review");
  telemetry->Attach(lodr->get(), "ablation.panel.lodr");

  SessionOptions sopt;
  sopt.num_frames = 300;
  for (MotionPattern pattern :
       {MotionPattern::kNormalWalk, MotionPattern::kTurnLeftRight}) {
    Session session = RecordSession(pattern, bed.scene.bounds(), sopt);
    for (WalkthroughSystem* system :
         {static_cast<WalkthroughSystem*>(visual->get()),
          static_cast<WalkthroughSystem*>(review->get()),
          static_cast<WalkthroughSystem*>(lodr->get())}) {
      Result<SessionSummary> summary = PlaySession(system, session);
      if (!summary.ok()) {
        return;
      }
      std::printf("%-18s | %10s %10.2f %12.2f\n", session.name.c_str(),
                  system->name().c_str(), summary->avg_frame_time_ms,
                  summary->avg_io_pages);
    }
  }
}

int Run(const BenchArgs& args) {
  PrintHeader("Ablations: construction, termination, delta/prefetch",
              "design-choice ablations (beyond the paper's figures)");
  TelemetryScope telemetry(args);
  Testbed bed = BuildTestbed(DefaultTestbedOptions());
  PrintTestbedSummary(bed);
  AblationSplitStrategies(bed);
  AblationTerminationHeuristics(bed, &telemetry);
  AblationDeltaAndPrefetch(bed, &telemetry);
  AblationBaselinePanel(bed, &telemetry);
  return telemetry.Write() ? 0 : 1;
}

}  // namespace
}  // namespace hdov::bench

int main(int argc, char** argv) {
  return hdov::bench::Run(hdov::bench::ParseBenchArgs(argc, argv));
}
