// Ablation experiments for the design choices DESIGN.md calls out, beyond
// the paper's own figures:
//  A. R-tree construction: Ang–Tan linear split (the paper's choice) vs
//     Guttman quadratic split vs STR bulk loading — node counts, build
//     cost and disk-query I/O on the same data.
//  B. Termination heuristic: the paper's Eq. 4 vs eta-only vs the
//     LoD-aware cost model — retrieved triangles and I/O per query.
//  C. Delta search & prefetching: frame-time average/variance/worst with
//     both off, delta only, and delta + prefetch.
//  E. Async prefetch pipeline (docs/prefetch.md): per-frame billed pages
//     and simulated frame time with the pipeline off vs on, per storage
//     scheme, plus the pipeline's issued/used/wasted accounting.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "rtree/rtree.h"
#include "walkthrough/frame_loop.h"
#include "walkthrough/lodr_system.h"
#include "walkthrough/review_system.h"
#include "walkthrough/visual_system.h"

namespace hdov::bench {
namespace {

void AblationSplitStrategies(const Testbed& bed, TelemetryScope* telemetry) {
  std::printf("--- A. R-tree construction strategies ---\n");
  SeriesTable table(telemetry->report(), "ablation.rtree_construction",
                    "strategy", 22,
                    {SeriesTable::Col{"nodes", 8, 0},
                     SeriesTable::Col{"build (ms)", 12, 2, /*wall=*/true},
                     SeriesTable::Col{"query I/O pages", 16, 2}});

  std::vector<std::pair<Aabb, uint64_t>> entries;
  for (const Object& obj : bed.scene.objects()) {
    entries.emplace_back(obj.mbr, obj.id);
  }
  std::vector<Vec3> probes = RandomViewpoints(bed.scene.bounds(), 200, 5);

  auto evaluate = [&](const char* name, RTree tree, double build_ms) {
    telemetry->report()->RecordTiming("rtree.build", build_ms);
    PageDevice device;
    Result<PackedRTree> packed = PackedRTree::Pack(tree, &device);
    if (!packed.ok()) {
      return;
    }
    device.ResetStats();
    std::vector<uint64_t> ids;
    for (const Vec3& p : probes) {
      Aabb window(Vec3(p.x - 200, p.y - 200, bed.scene.bounds().min.z),
                  Vec3(p.x + 200, p.y + 200, bed.scene.bounds().max.z));
      (void)packed->WindowQuery(window, &ids);
    }
    table.Row(name, {static_cast<double>(tree.num_nodes()), build_ms,
                     static_cast<double>(device.stats().page_reads) /
                         probes.size()});
  };

  auto insert_build = [&](const char* name, SplitAlgorithm split) {
    RTreeOptions opt;
    opt.max_entries = 16;
    opt.min_entries = 6;
    opt.split = split;
    RTree tree(opt);
    WallTimer timer;
    for (const auto& [mbr, id] : entries) {
      (void)tree.Insert(mbr, id);
    }
    evaluate(name, std::move(tree), timer.ElapsedMs());
  };
  insert_build("insert + Ang-Tan", SplitAlgorithm::kAngTanLinear);
  insert_build("insert + quadratic", SplitAlgorithm::kQuadratic);
  {
    RTreeOptions opt;
    opt.max_entries = 16;
    opt.min_entries = 6;
    WallTimer timer;
    Result<RTree> tree = RTree::BulkLoad(entries, opt);
    const double ms = timer.ElapsedMs();
    if (tree.ok()) {
      evaluate("STR bulk load", std::move(*tree), ms);
    }
  }
  std::printf("\n");
}

void AblationTerminationHeuristics(const Testbed& bed,
                                   TelemetryScope* telemetry) {
  std::printf("--- B. termination heuristics (per query, eta sweep) ---\n");
  SeriesTable table(telemetry->report(), "ablation.termination", "eta", 8,
                    {SeriesTable::Col{"Eq.4 tris", 12, 0},
                     SeriesTable::Col{"Eq.4 IO", 9, 2},
                     SeriesTable::Col{"eta-only tris", 13, 0},
                     SeriesTable::Col{"eta-only IO", 11, 2},
                     SeriesTable::Col{"cost tris", 12, 0},
                     SeriesTable::Col{"cost IO", 9, 2}});

  std::vector<Vec3> probes = RandomViewpoints(bed.scene.bounds(), 500, 11);
  VisualOptions vopt = DefaultVisualOptions();
  vopt.prefetch_models_per_frame = 0;
  Result<std::unique_ptr<VisualSystem>> visual =
      MakeVisualSystem(bed, vopt);
  if (!visual.ok()) {
    return;
  }
  telemetry->Attach(visual->get(), "ablation.termination");
  for (double eta : {0.001, 0.004, 0.016}) {
    std::vector<double> values;
    for (TerminationHeuristic heuristic :
         {TerminationHeuristic::kEq4, TerminationHeuristic::kNone,
          TerminationHeuristic::kCostModel}) {
      (*visual)->set_eta(eta);
      (*visual)->ResetIoStats();
      uint64_t triangles = 0;
      std::vector<RetrievedLod> result;
      for (const Vec3& p : probes) {
        (void)(*visual)->QueryWithHeuristic(p, heuristic, &result);
        for (const RetrievedLod& lod : result) {
          triangles += lod.triangle_count;
        }
      }
      values.push_back(static_cast<double>(triangles) / probes.size());
      values.push_back(
          static_cast<double>((*visual)->TotalIoStats().page_reads) /
          probes.size());
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.4f", eta);
    table.Row(label, {values[0], values[1], values[2], values[3], values[4],
                      values[5]});
  }
  std::printf("\n");
}

void AblationDeltaAndPrefetch(const Testbed& bed,
                              TelemetryScope* telemetry) {
  std::printf("--- C. delta search and prefetching ---\n");
  SeriesTable table(telemetry->report(), "ablation.delta_prefetch",
                    "configuration", 24,
                    {SeriesTable::Col{"avg (ms)", 12, 2},
                     SeriesTable::Col{"variance", 12, 2},
                     SeriesTable::Col{"worst (ms)", 12, 2}});
  Session session = RecordSession(MotionPattern::kNormalWalk,
                                  bed.scene.bounds(), SessionOptions{
                                      .num_frames = 400,
                                  });
  struct Config {
    const char* name;
    bool delta;
    size_t prefetch;
  };
  for (const Config& config :
       {Config{"no delta, no prefetch", false, 0},
        Config{"delta only", true, 0},
        Config{"delta + prefetch", true, 2}}) {
    VisualOptions vopt = DefaultVisualOptions();
    vopt.prefetch_models_per_frame = config.prefetch;
    Result<std::unique_ptr<VisualSystem>> visual =
        MakeVisualSystem(bed, vopt);
    if (!visual.ok()) {
      return;
    }
    // Loop-scoped system: its registry views vanish with it, but the frame
    // records it emits stay in the snapshot.
    telemetry->Attach(visual->get(),
                      std::string("ablation.prefetch_") +
                          std::to_string(config.prefetch) +
                          (config.delta ? ".delta" : ".nodelta"));
    (*visual)->set_delta_enabled(config.delta);
    PlayOptions popt;
    popt.keep_frames = true;
    WallTimer playback;
    Result<SessionSummary> summary =
        PlaySession(visual->get(), session, popt);
    if (!summary.ok()) {
      return;
    }
    telemetry->report()->RecordTiming("session.play", playback.ElapsedMs());
    double worst = 0.0;
    for (size_t i = 1; i < summary->frames.size(); ++i) {
      worst = std::max(worst, summary->frames[i].frame_time_ms);
    }
    table.Row(config.name,
              {summary->avg_frame_time_ms, summary->var_frame_time, worst});
  }
  std::printf("\n");
}

void AblationPrefetchPipeline(const Testbed& bed, TelemetryScope* telemetry) {
  std::printf("--- E. async prefetch pipeline (per frame, by scheme) ---\n");
  std::printf("Frames consume pages the end-of-frame speculation already"
              " staged; 'stall pages'\nis what the frame still bills"
              " (simulated, deterministic).\n\n");
  SeriesTable table(telemetry->report(), "ablation.prefetch_pipeline",
                    "scheme/prefetch", 26,
                    {SeriesTable::Col{"stall pages", 12, 3},
                     SeriesTable::Col{"sim ms", 10, 3},
                     SeriesTable::Col{"issued", 9, 0},
                     SeriesTable::Col{"used", 9, 0},
                     SeriesTable::Col{"wasted", 9, 3}});
  Session session = RecordSession(MotionPattern::kNormalWalk,
                                  bed.scene.bounds(), SessionOptions{
                                      .num_frames = 400,
                                  });
  for (StorageScheme scheme :
       {StorageScheme::kVertical, StorageScheme::kIndexedVertical,
        StorageScheme::kBitmapVertical}) {
    for (prefetch::PrefetchMode mode :
         {prefetch::PrefetchMode::kOff, prefetch::PrefetchMode::kAsync}) {
      VisualOptions vopt = DefaultVisualOptions();
      vopt.scheme = scheme;
      vopt.prefetch_models_per_frame = 0;  // Isolate the async pipeline.
      vopt.prefetch = mode;
      Result<std::unique_ptr<VisualSystem>> visual =
          MakeVisualSystem(bed, vopt);
      if (!visual.ok()) {
        return;
      }
      telemetry->Attach(visual->get(),
                        std::string("ablation.pipeline.") +
                            StorageSchemeName(scheme) + "." +
                            prefetch::PrefetchModeName(mode));
      Result<SessionSummary> summary = PlaySession(visual->get(), session);
      if (!summary.ok()) {
        return;
      }
      prefetch::PrefetcherStats pstats;
      if ((*visual)->prefetcher() != nullptr) {
        pstats = (*visual)->prefetcher()->stats();
      }
      table.Row(std::string(StorageSchemeName(scheme)) + "/" +
                    prefetch::PrefetchModeName(mode),
                {summary->avg_io_pages, summary->avg_frame_time_ms,
                 static_cast<double>(pstats.issued_pages),
                 static_cast<double>(pstats.used_pages),
                 pstats.WastedRatio()});
    }
  }
  std::printf("\n");
}

void AblationBaselinePanel(const Testbed& bed, TelemetryScope* telemetry) {
  std::printf("--- D. three-baseline panel (per session) ---\n");
  std::printf("LoD-R-tree is the related-work baseline the paper critiques"
              " in section 2:\nfast while the view holds steady, degrading"
              " on view changes.\n\n");
  SeriesTable table(telemetry->report(), "ablation.panel",
                    "session/system", 30,
                    {SeriesTable::Col{"avg ms", 10, 2},
                     SeriesTable::Col{"avg I/O", 12, 2}});

  VisualOptions vopt = DefaultVisualOptions();
  vopt.eta = 0.001;
  Result<std::unique_ptr<VisualSystem>> visual =
      MakeVisualSystem(bed, vopt);
  ReviewOptions ropt;
  ropt.query_box_size = 400.0;
  ropt.cache_distance = 600.0;
  Result<std::unique_ptr<ReviewSystem>> review =
      ReviewSystem::Create(&bed.scene, ropt);
  LodRTreeOptions lopt;
  lopt.frustum.far_dist = 400.0;
  lopt.rtree.max_entries = 16;
  lopt.rtree.min_entries = 6;
  Result<std::unique_ptr<LodRTreeSystem>> lodr =
      LodRTreeSystem::Create(&bed.scene, lopt);
  if (!visual.ok() || !review.ok() || !lodr.ok()) {
    return;
  }
  telemetry->Attach(visual->get(), "ablation.panel.visual");
  telemetry->Attach(review->get(), "ablation.panel.review");
  telemetry->Attach(lodr->get(), "ablation.panel.lodr");

  SessionOptions sopt;
  sopt.num_frames = 300;
  for (MotionPattern pattern :
       {MotionPattern::kNormalWalk, MotionPattern::kTurnLeftRight}) {
    Session session = RecordSession(pattern, bed.scene.bounds(), sopt);
    for (WalkthroughSystem* system :
         {static_cast<WalkthroughSystem*>(visual->get()),
          static_cast<WalkthroughSystem*>(review->get()),
          static_cast<WalkthroughSystem*>(lodr->get())}) {
      Result<SessionSummary> summary = PlaySession(system, session);
      if (!summary.ok()) {
        return;
      }
      table.Row(session.name + "/" + system->name(),
                {summary->avg_frame_time_ms, summary->avg_io_pages});
    }
  }
}

int Run(const BenchArgs& args) {
  TelemetryScope telemetry(args, "bench_ablations");
  telemetry.Header("Ablations: construction, termination, delta/prefetch",
                   "design-choice ablations (beyond the paper's figures)");
  Testbed bed = BuildTestbed(DefaultTestbedOptions(), telemetry.report());
  PrintTestbedSummary(bed);
  AblationSplitStrategies(bed, &telemetry);
  AblationTerminationHeuristics(bed, &telemetry);
  AblationDeltaAndPrefetch(bed, &telemetry);
  AblationPrefetchPipeline(bed, &telemetry);
  AblationBaselinePanel(bed, &telemetry);
  return telemetry.Write() ? 0 : 1;
}

}  // namespace
}  // namespace hdov::bench

int main(int argc, char** argv) {
  return hdov::bench::Run(hdov::bench::ParseBenchArgs(argc, argv));
}
